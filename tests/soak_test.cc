// Deterministic overload/partition/crash soak over a 4-node Kafka cluster
// of full SebdbNodes: an open-loop overload burst (offered load far above
// the admission caps), a full partition of one node, and a crash/restart of
// another — with clients that retry after the server's retry_after hint and
// resubmit on timeout (safe: the broker dedups sequenced keys and acks
// duplicates). Asserts the safety invariants of DESIGN.md's overload
// contract: no committed txn lost, no fork, every acked txn in the chain
// exactly once, admission peaks within the configured caps, and shedding
// actually happened. Zero-latency SimNetwork with explicit fault schedules
// keeps the run deterministic and bounded; labeled `soak` and runnable
// under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "consensus/pbft.h"
#include "consensus/tendermint.h"
#include "core/node.h"
#include "storage/block.h"
#include "tests/test_util.h"
#include "network/sim_network.h"

namespace sebdb {
namespace {

using testing_util::ScratchDir;

constexpr uint64_t kMaxMempoolTxns = 16;
constexpr uint64_t kMaxMempoolBytes = 64ull << 10;
constexpr uint64_t kPerSenderQuota = 8;

NodeOptions SoakNodeOptions(const std::string& id, const std::string& dir,
                            const std::vector<std::string>& participants) {
  NodeOptions options;
  options.node_id = id;
  options.data_dir = dir + "/" + id;
  options.consensus = ConsensusKind::kKafka;
  options.participants = participants;
  options.consensus_options.max_batch_txns = 10;
  options.consensus_options.batch_timeout_millis = 20;
  options.consensus_options.admission.max_txns = kMaxMempoolTxns;
  options.consensus_options.admission.max_bytes = kMaxMempoolBytes;
  options.consensus_options.admission.max_txns_per_sender = kPerSenderQuota;
  options.consensus_options.admission.retry_after_base_millis = 5;
  options.gossip.interval_millis = 10;
  options.rpc_server.workers = 1;  // bounded RPC queue in the loop too
  return options;
}

// Latest completion state of one logical transaction. Resubmissions
// re-register the engine callback, so only the newest state receives the
// verdict; older abandoned states are simply never fired.
struct AckState {
  std::mutex mu;
  std::condition_variable cv;
  bool fired = false;
  Status status;
};

struct PendingTxn {
  Transaction txn;
  std::string key;
  std::shared_ptr<AckState> state;
  bool acked = false;
  bool abandoned = false;
};

struct ClientStats {
  uint64_t acked = 0;
  uint64_t rejections_seen = 0;  // ResourceExhausted verdicts (then retried)
  uint64_t resubmits = 0;
  uint64_t abandoned = 0;
  std::vector<std::string> acked_keys;
};

std::shared_ptr<AckState> SubmitTracked(SebdbNode* node, const Transaction& txn) {
  auto state = std::make_shared<AckState>();
  Status s = node->SubmitAsync(txn, [state](Status status) {
    std::lock_guard<std::mutex> lock(state->mu);
    state->status = std::move(status);
    state->fired = true;
    state->cv.notify_all();
  });
  // A synchronous failure (local shed) already fired the callback; any
  // other error is recorded so the retry loop can act on it.
  if (!s.ok()) {
    std::lock_guard<std::mutex> lock(state->mu);
    if (!state->fired) {
      state->status = s;
      state->fired = true;
    }
  }
  return state;
}

// Fires `count` transactions open-loop at `node`, then drives every one to
// an ack: ResourceExhausted -> sleep the server hint and resubmit; no
// verdict within the attempt window -> resubmit (duplicate-safe); Aborted or
// a semantic error -> abandon.
void RunClient(SebdbNode* node, KeyStore* keystore,
               const std::string& identity, int64_t value_base, int count,
               ClientStats* out) {
  (void)keystore;
  std::vector<PendingTxn> work;
  work.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; i++) {
    PendingTxn pending;
    Status s = node->MakeInsertTransaction(
        identity, "soak", {Value::Int(value_base + i)}, &pending.txn);
    if (!s.ok()) {
      out->abandoned++;
      continue;
    }
    pending.key = pending.txn.Hash().ToHex();
    pending.state = SubmitTracked(node, pending.txn);
    work.push_back(std::move(pending));
  }

  const int64_t deadline = SteadyNowMillis() + 60000;
  for (auto& pending : work) {
    while (!pending.acked && !pending.abandoned) {
      if (SteadyNowMillis() > deadline) {
        pending.abandoned = true;
        out->abandoned++;
        break;
      }
      Status verdict;
      bool fired;
      {
        std::unique_lock<std::mutex> lock(pending.state->mu);
        fired = pending.state->cv.wait_for(
            lock, std::chrono::milliseconds(1500),
            [&] { return pending.state->fired; });
        if (fired) verdict = pending.state->status;
      }
      if (fired && verdict.ok()) {
        pending.acked = true;
        out->acked++;
        out->acked_keys.push_back(pending.key);
      } else if (fired && verdict.IsResourceExhausted()) {
        out->rejections_seen++;
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::max<int64_t>(verdict.retry_after_millis(), 1)));
        out->resubmits++;
        pending.state = SubmitTracked(node, pending.txn);
      } else if (fired) {
        // Aborted (engine stopped) or a semantic error: not retryable.
        pending.abandoned = true;
        out->abandoned++;
      } else {
        // No verdict (e.g. the submit message died in a partition):
        // resubmit. Exactly-once holds because the broker dedups sequenced
        // keys and dup-acks the origin.
        out->resubmits++;
        pending.state = SubmitTracked(node, pending.txn);
      }
    }
  }
}

bool WaitForHeight(SebdbNode* node, uint64_t height, int timeout_ms = 30000) {
  for (int i = 0; i < timeout_ms / 10; i++) {
    if (node->chain().height() >= height) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

// Per-key commit counts across the whole chain of `node` (genesis skipped).
std::unordered_map<std::string, int> ChainCommitCounts(SebdbNode* node) {
  std::unordered_map<std::string, int> counts;
  uint64_t height = node->chain().height();
  for (uint64_t h = 1; h < height; h++) {
    std::string record;
    EXPECT_TRUE(node->GetBlockRecord(h, &record).ok()) << "height " << h;
    Block block;
    Slice input(record);
    EXPECT_TRUE(Block::DecodeFrom(&input, &block).ok()) << "height " << h;
    for (const auto& txn : block.transactions()) {
      // Block packaging assigns tids after the client hashed its copy;
      // normalize back to the client-side identity (tid 0) so acked keys
      // match committed keys.
      Transaction normalized = txn;
      normalized.set_tid(0);
      counts[normalized.Hash().ToHex()]++;
    }
  }
  return counts;
}

TEST(SoakTest, OverloadPartitionCrashRestart) {
  SimNetworkOptions net_options;
  net_options.max_queue_per_endpoint = 4096;
  net_options.max_gossip_queue_per_endpoint = 256;
  SimNetwork net(net_options);
  ScratchDir dir("soak");
  std::vector<std::string> participants = {"n0", "n1", "n2", "n3"};
  KeyStore keystore;
  for (const auto& id : participants) {
    ASSERT_TRUE(keystore.AddIdentity(id, "secret-" + id).ok());
  }
  for (int i = 0; i < 4; i++) {
    ASSERT_TRUE(
        keystore.AddIdentity("c" + std::to_string(i), "secret-c").ok());
  }

  std::vector<std::unique_ptr<SebdbNode>> nodes;
  for (const auto& id : participants) {
    auto node = std::make_unique<SebdbNode>(
        SoakNodeOptions(id, dir.path(), participants), &keystore, nullptr);
    ASSERT_TRUE(node->Start(&net).ok()) << id;
    nodes.push_back(std::move(node));
  }
  ResultSet rs;
  ASSERT_TRUE(nodes[0]->ExecuteSql("CREATE soak (v int)", {}, &rs).ok());
  for (auto& node : nodes) ASSERT_TRUE(WaitForHeight(node.get(), 2));

  std::vector<ClientStats> stats(6);

  // Phase 1 — overload burst: four clients fire 40 txns each open-loop.
  // Offered in-flight load (160) is 10x the mempool cap (16) and 20x the
  // per-sender quota (8), so local shedding and broker nacks are certain.
  {
    std::vector<std::thread> clients;
    for (int i = 0; i < 4; i++) {
      clients.emplace_back([&, i] {
        RunClient(nodes[static_cast<size_t>(i)].get(), &keystore,
                  "c" + std::to_string(i), 100000 * (i + 1), 40, &stats[i]);
      });
    }
    for (auto& client : clients) client.join();
  }

  // Phase 2 — partition: n3 loses every link mid-burst. Its clients time
  // out (submits die on the downed links) and resubmit until the heal.
  {
    for (const auto& peer : {"n0", "n1", "n2"}) {
      net.SetLinkDown("n3", peer, true);
    }
    std::thread partitioned([&] {
      RunClient(nodes[3].get(), &keystore, "c3", 500000, 15, &stats[4]);
    });
    // A healthy client keeps committing through the partition.
    RunClient(nodes[1].get(), &keystore, "c1", 600000, 15, &stats[5]);
    std::this_thread::sleep_for(std::chrono::milliseconds(1000));
    for (const auto& peer : {"n0", "n1", "n2"}) {
      net.SetLinkDown("n3", peer, false);
    }
    partitioned.join();
  }

  // Phase 3 — crash/restart: n2 (a non-broker) restarts over the same data
  // dir; its chain replays and consensus sequencing resumes where it left
  // off. Submissions to the restarted node must still commit.
  {
    nodes[2]->Stop();
    nodes[2].reset();
    nodes[2] = std::make_unique<SebdbNode>(
        SoakNodeOptions("n2", dir.path(), participants), &keystore, nullptr);
    ASSERT_TRUE(nodes[2]->Start(&net).ok());
    ClientStats restart_stats;
    RunClient(nodes[2].get(), &keystore, "c2", 700000, 15, &restart_stats);
    EXPECT_EQ(restart_stats.acked, 15u);
    EXPECT_EQ(restart_stats.abandoned, 0u);
    stats.push_back(restart_stats);
  }

  // Convergence: every node reaches the max height with the same tip.
  uint64_t max_height = 0;
  for (auto& node : nodes) {
    max_height = std::max(max_height, node->chain().height());
  }
  for (auto& node : nodes) {
    ASSERT_TRUE(WaitForHeight(node.get(), max_height)) << node->node_id();
  }
  for (auto& node : nodes) {
    EXPECT_EQ(node->chain().tip_hash(), nodes[0]->chain().tip_hash())
        << "fork: " << node->node_id();
  }

  // Safety: every acked txn is in the chain exactly once, on every node —
  // and no txn at all committed twice (exactly-once under resubmission).
  std::vector<std::string> all_acked;
  uint64_t total_acked = 0, total_rejections = 0, total_abandoned = 0;
  for (const auto& s : stats) {
    total_acked += s.acked;
    total_rejections += s.rejections_seen;
    total_abandoned += s.abandoned;
    all_acked.insert(all_acked.end(), s.acked_keys.begin(),
                     s.acked_keys.end());
  }
  for (auto& node : nodes) {
    std::unordered_map<std::string, int> counts =
        ChainCommitCounts(node.get());
    for (const auto& [key, count] : counts) {
      EXPECT_EQ(count, 1) << "duplicate commit of " << key << " on "
                          << node->node_id();
    }
    for (const auto& key : all_acked) {
      EXPECT_EQ(counts.count(key), 1u)
          << "acked txn lost on " << node->node_id() << ": " << key;
    }
  }

  // Liveness of the accepted load: nothing was abandoned, and overload
  // actually exercised the shedding path.
  EXPECT_EQ(total_abandoned, 0u);
  EXPECT_EQ(total_acked, 4 * 40u + 15 + 15 + 15);
  EXPECT_GT(total_rejections, 0u);

  // Admission stayed within its caps on every node.
  uint64_t nodes_that_shed = 0;
  for (auto& node : nodes) {
    MempoolStats mp = node->mempool_stats();
    EXPECT_LE(mp.admission.peak_txns, kMaxMempoolTxns) << node->node_id();
    EXPECT_LE(mp.admission.peak_bytes, kMaxMempoolBytes) << node->node_id();
    if (mp.admission.rejected_total() > 0) nodes_that_shed++;
  }
  EXPECT_GE(nodes_that_shed, 1u);

  for (auto& node : nodes) node->Stop();
}

// Engine-level deterministic soak for the BFT engines: sustained open-loop
// overload against a tiny mempool, asserting exactly-once commits and cap
// compliance without the full-node stack (keeps the TSan run cheap).
template <typename Engine>
void EngineOverloadSoak(
    const std::function<std::unique_ptr<Engine>(
        const std::string& id, const std::vector<std::string>& ids,
        SimNetwork* net, const ConsensusOptions& options, BatchCommitFn fn)>&
        make_engine) {
  SimNetwork net;
  std::vector<std::string> ids = {"n0", "n1", "n2", "n3"};
  ConsensusOptions options;
  options.max_batch_txns = 10;
  options.batch_timeout_millis = 20;
  options.admission.max_txns = 8;
  options.admission.retry_after_base_millis = 2;

  struct Harness {
    std::unique_ptr<Engine> engine;
    std::mutex mu;
    std::condition_variable cv;
    std::vector<Transaction> committed;
  };
  std::vector<std::unique_ptr<Harness>> nodes;
  for (const auto& id : ids) {
    auto h = std::make_unique<Harness>();
    Harness* raw = h.get();
    h->engine = make_engine(
        id, ids, &net, options,
        [raw](uint64_t seq, std::vector<Transaction> txns) {
          (void)seq;
          std::lock_guard<std::mutex> lock(raw->mu);
          for (auto& txn : txns) raw->committed.push_back(std::move(txn));
          raw->cv.notify_all();
        });
    Engine* engine = h->engine.get();
    ASSERT_TRUE(net.Register(id, [engine](const Message& m) {
                       engine->HandleMessage(m);
                     }).ok());
    ASSERT_TRUE(h->engine->Start().ok());
    nodes.push_back(std::move(h));
  }

  constexpr int kPerNode = 25;
  std::atomic<uint64_t> rejections{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; c++) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerNode; i++) {
        Transaction txn = testing_util::MakeTxn(
            "t", "sender" + std::to_string(c), 1000 * (c + 1) + i,
            {Value::Int(1000 * (c + 1) + i)});
        // Submit-side shedding is the only failure mode here; retry after
        // the hint until admitted.
        while (true) {
          Status s = nodes[static_cast<size_t>(c)]->engine->Submit(txn,
                                                                   nullptr);
          if (s.ok()) break;
          ASSERT_TRUE(s.IsResourceExhausted()) << s.ToString();
          rejections.fetch_add(1);
          std::this_thread::sleep_for(std::chrono::milliseconds(
              std::max<int64_t>(s.retry_after_millis(), 1)));
        }
      }
    });
  }
  for (auto& client : clients) client.join();

  const size_t expected = 4 * kPerNode;
  for (auto& node : nodes) {
    std::unique_lock<std::mutex> lock(node->mu);
    ASSERT_TRUE(node->cv.wait_for(lock, std::chrono::seconds(60), [&] {
      return node->committed.size() >= expected;
    })) << "committed " << node->committed.size() << "/" << expected;
  }
  // Same order everywhere, no duplicates, caps respected.
  std::vector<Transaction> reference;
  {
    std::lock_guard<std::mutex> lock(nodes[0]->mu);
    reference = nodes[0]->committed;
  }
  std::set<std::string> seen;
  for (const auto& txn : reference) {
    EXPECT_TRUE(seen.insert(txn.Hash().ToHex()).second) << "duplicate";
  }
  EXPECT_EQ(reference.size(), expected);
  for (auto& node : nodes) {
    std::lock_guard<std::mutex> lock(node->mu);
    ASSERT_EQ(node->committed.size(), expected);
    for (size_t i = 0; i < expected; i++) {
      EXPECT_EQ(node->committed[i], reference[i]);
    }
    MempoolStats mp = node->engine->mempool_stats();
    EXPECT_LE(mp.admission.peak_txns, options.admission.max_txns);
  }
  EXPECT_GT(rejections.load(), 0u);
  for (auto& node : nodes) node->engine->Stop();
  for (const auto& id : ids) net.Unregister(id);
}

TEST(SoakTest, PbftEngineOverload) {
  EngineOverloadSoak<PbftEngine>(
      [](const std::string& id, const std::vector<std::string>& ids,
         SimNetwork* net, const ConsensusOptions& options, BatchCommitFn fn) {
        return std::make_unique<PbftEngine>(id, ids, net, options,
                                            std::move(fn));
      });
}

TEST(SoakTest, TendermintEngineOverload) {
  TendermintOptions tm;
  tm.serial_txn_cost_micros = 0;
  EngineOverloadSoak<TendermintEngine>(
      [tm](const std::string& id, const std::vector<std::string>& ids,
           SimNetwork* net, const ConsensusOptions& options,
           BatchCommitFn fn) {
        return std::make_unique<TendermintEngine>(id, ids, net, options,
                                                  std::move(fn), tm);
      });
}

}  // namespace
}  // namespace sebdb
