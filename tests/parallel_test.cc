// Thread-pool unit tests plus serial/parallel equivalence: the same
// workload must produce byte-identical results with no pool, a 1-thread
// pool, and a 4-thread pool — for query execution (scan, trace, joins) and
// for startup replay (tip hash, height, ALI digests).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "offchain/offchain_db.h"
#include "sql/executor.h"
#include "tests/test_util.h"

namespace sebdb {
namespace {

using testing_util::MakeTxn;
using testing_util::ScratchDir;
using testing_util::TestChain;

TEST(ThreadPoolTest, ParallelForCoversEveryIndex) {
  ThreadPool pool(4);
  constexpr uint64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](uint64_t i) { hits[i].fetch_add(1); });
  for (uint64_t i = 0; i < kN; i++) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForWithGrain) {
  ThreadPool pool(3);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(1000, [&](uint64_t i) { sum.fetch_add(i); }, /*grain=*/64);
  EXPECT_EQ(sum.load(), 1000ull * 999 / 2);
}

TEST(ThreadPoolTest, SubmitRunsEverything) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  Latch done(100);
  for (int i = 0; i < 100; i++) {
    pool.Submit([&] {
      count.fetch_add(1);
      done.CountDown();
    });
  }
  done.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(8, [&](uint64_t) {
    // Caller participation makes the inner loop safe even when every worker
    // is already occupied by the outer one.
    pool.ParallelFor(8, [&](uint64_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, ParallelForStatusSerialWhenNoPool) {
  std::vector<int> touched(10, 0);
  Status s = ParallelForStatus(nullptr, 10, [&](uint64_t i) -> Status {
    touched[i] = 1;
    if (i == 6) return Status::Corruption("boom");
    return Status::OK();
  });
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("boom"), std::string::npos);
  // Serial early exit: nothing past the failure runs.
  EXPECT_EQ(std::accumulate(touched.begin(), touched.end(), 0), 7);
}

TEST(ThreadPoolTest, ParallelForStatusReportsSmallestFailingIndex) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; round++) {
    Status s = ParallelForStatus(&pool, 200, [&](uint64_t i) -> Status {
      if (i % 50 == 3) {  // fails at 3, 53, 103, 153
        return Status::Corruption("fail@" + std::to_string(i));
      }
      return Status::OK();
    });
    ASSERT_FALSE(s.ok());
    // Must be the status a serial loop would return: the smallest index.
    EXPECT_NE(s.ToString().find("fail@3"), std::string::npos) << s.ToString();
  }
}

TEST(ThreadPoolTest, DefaultPoolIsShared) {
  ThreadPool* a = ThreadPool::Default();
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, ThreadPool::Default());
  EXPECT_GE(a->num_threads(), 1);
}

// ---------------------------------------------------------------------------
// Serial/parallel query equivalence on a randomized multi-segment chain.

class ParallelEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ChainOptions options;
    options.store.segment_size = 8 << 10;  // tiny: forces many segments
    chain_ = std::make_unique<TestChain>("parallel_eq", options);

    Schema donate, transfer;
    ASSERT_TRUE(Schema::Create("donate",
                               {{"donor", ValueType::kString},
                                {"project", ValueType::kString},
                                {"amount", ValueType::kInt64}},
                               &donate)
                    .ok());
    ASSERT_TRUE(Schema::Create("transfer",
                               {{"project", ValueType::kString},
                                {"organization", ValueType::kString},
                                {"amount", ValueType::kInt64}},
                               &transfer)
                    .ok());
    std::vector<Transaction> schema_txns;
    for (const Schema* schema : {&donate, &transfer}) {
      Transaction txn = Catalog::MakeSchemaTransaction(*schema);
      txn.set_sender("admin");
      txn.set_ts(NextTs());
      schema_txns.push_back(std::move(txn));
    }
    ASSERT_TRUE(chain_->AppendBlock(std::move(schema_txns)).ok());

    // Randomized data: 40 blocks, mixed tables, skewed senders/amounts.
    Random rng(20260807);
    for (int b = 0; b < 40; b++) {
      std::vector<Transaction> txns;
      int rows = 3 + static_cast<int>(rng.Uniform(8));
      for (int i = 0; i < rows; i++) {
        if (rng.Uniform(3) == 0) {
          txns.push_back(MakeTxn(
              "transfer", "org" + std::to_string(rng.Uniform(4)), NextTs(),
              {Value::Str("proj" + std::to_string(rng.Uniform(5))),
               Value::Str("school" + std::to_string(rng.Uniform(3))),
               Value::Int(rng.UniformRange(0, 500))}));
        } else {
          txns.push_back(MakeTxn(
              "donate", "donor" + std::to_string(rng.Uniform(6)), NextTs(),
              {Value::Str("d" + std::to_string(rng.Uniform(6))),
               Value::Str("proj" + std::to_string(rng.Uniform(5))),
               Value::Int(rng.UniformRange(0, 500))}));
        }
      }
      ASSERT_TRUE(chain_->AppendBlock(std::move(txns)).ok());
    }

    ASSERT_TRUE(offchain_
                    .CreateTable("projectinfo",
                                 {{"project", ValueType::kString},
                                  {"budget", ValueType::kInt64}})
                    .ok());
    for (int p = 0; p < 5; p++) {
      ASSERT_TRUE(offchain_
                      .Insert("projectinfo",
                              {Value::Str("proj" + std::to_string(p)),
                               Value::Int(100 * p)})
                      .ok());
    }
    connector_ = std::make_unique<LocalOffchainConnector>(&offchain_);
    executor_ = std::make_unique<Executor>(chain_->store(), chain_->indexes(),
                                           chain_->catalog(),
                                           connector_.get());
    ExecOptions ddl;
    ResultSet rs;
    ASSERT_TRUE(
        executor_->ExecuteSql("CREATE INDEX ON donate(amount)", ddl, &rs).ok());
    ASSERT_TRUE(
        executor_->ExecuteSql("CREATE INDEX ON transfer(amount)", ddl, &rs)
            .ok());
    ASSERT_TRUE(
        executor_->ExecuteSql("CREATE INDEX ON donate(project)", ddl, &rs)
            .ok());
    ASSERT_TRUE(
        executor_->ExecuteSql("CREATE INDEX ON transfer(project)", ddl, &rs)
            .ok());
  }

  Timestamp NextTs() { return ts_ += 10; }

  // In-order rendering: equivalence means identical rows in identical order.
  static std::vector<std::string> Rendered(const ResultSet& result) {
    std::vector<std::string> out;
    for (const auto& row : result.rows) {
      std::string line;
      for (const auto& v : row) line += v.ToString() + "|";
      out.push_back(std::move(line));
    }
    return out;
  }

  Timestamp ts_ = 0;
  std::unique_ptr<TestChain> chain_;
  OffchainDb offchain_;
  std::unique_ptr<LocalOffchainConnector> connector_;
  std::unique_ptr<Executor> executor_;
};

TEST_F(ParallelEquivalenceTest, QueriesMatchSerialByteForByte) {
  struct Query {
    std::string sql;
    AccessPath path = AccessPath::kAuto;
    JoinStrategy join = JoinStrategy::kAuto;
  };
  std::vector<Query> queries;
  for (AccessPath path :
       {AccessPath::kScan, AccessPath::kBitmap, AccessPath::kLayered}) {
    queries.push_back(
        {"SELECT * FROM donate WHERE amount BETWEEN 100 AND 320", path});
    queries.push_back({"TRACE OPERATOR = 'donor2'", path});
    queries.push_back({"TRACE OPERATION = 'transfer'", path});
    queries.push_back(
        {"TRACE OPERATOR = 'donor1', OPERATION = 'donate'", path});
  }
  for (JoinStrategy join : {JoinStrategy::kScanHash, JoinStrategy::kBitmapHash,
                            JoinStrategy::kLayeredMerge}) {
    Query q;
    q.sql =
        "SELECT * FROM donate, transfer ON donate.project = transfer.project "
        "WHERE donate.amount < 60";
    q.join = join;
    queries.push_back(q);
    Query offq;
    offq.sql =
        "SELECT * FROM onchain.donate, offchain.projectinfo ON "
        "donate.project = projectinfo.project";
    offq.join = join;
    queries.push_back(offq);
  }

  ThreadPool pool1(1), pool4(4);
  for (const auto& q : queries) {
    ExecOptions options;
    options.access_path = q.path;
    options.join_strategy = q.join;

    executor_->set_pool(nullptr);
    ResultSet serial;
    ASSERT_TRUE(executor_->ExecuteSql(q.sql, options, &serial).ok()) << q.sql;

    for (ThreadPool* pool : {&pool1, &pool4}) {
      executor_->set_pool(pool);
      ResultSet parallel;
      ASSERT_TRUE(executor_->ExecuteSql(q.sql, options, &parallel).ok())
          << q.sql;
      EXPECT_EQ(serial.plan, parallel.plan) << q.sql;
      EXPECT_EQ(serial.columns, parallel.columns) << q.sql;
      EXPECT_EQ(Rendered(serial), Rendered(parallel))
          << q.sql << " with " << pool->num_threads() << " threads";
    }
    executor_->set_pool(nullptr);
  }
}

// ---------------------------------------------------------------------------
// Serial vs parallel startup replay over the same on-disk chain.

TEST(ParallelReplayTest, ReplayMatchesSerial) {
  ScratchDir dir("parallel_replay");
  ChainOptions base;
  base.verify_signatures = false;
  base.store.segment_size = 8 << 10;

  // Build a multi-segment chain, then close it.
  {
    ChainManager writer("writer", nullptr);
    ASSERT_TRUE(writer.Open(base, dir.path()).ok());
    Random rng(7);
    Timestamp ts = 0;
    for (int b = 0; b < 60; b++) {
      std::vector<Transaction> txns;
      int rows = 2 + static_cast<int>(rng.Uniform(6));
      for (int i = 0; i < rows; i++) {
        txns.push_back(MakeTxn("t" + std::to_string(rng.Uniform(3)),
                               "s" + std::to_string(rng.Uniform(5)),
                               ts += 10,
                               {Value::Int(rng.UniformRange(0, 1000))}));
      }
      Timestamp block_ts = 0;
      for (const auto& txn : txns) block_ts = std::max(block_ts, txn.ts());
      ASSERT_TRUE(writer
                      .AppendBatch(writer.height() - 1, std::move(txns),
                                   block_ts, "sig")
                      .ok());
    }
    ASSERT_TRUE(writer.Close().ok());
  }

  auto digest_of = [](ChainManager& chain, const std::string& sender) {
    AuthenticatedLayeredIndex* ali = chain.indexes()->senid_ali();
    EXPECT_NE(ali, nullptr);
    Value v = Value::Str(sender);
    Hash256 digest;
    EXPECT_TRUE(
        ali->ComputeDigest(&v, &v, nullptr, ali->num_blocks(), &digest).ok());
    return digest.ToHex();
  };

  // Serial replay.
  ChainManager serial("serial", nullptr);
  ASSERT_TRUE(serial.Open(base, dir.path()).ok());

  // Parallel replay with caches on (the replay should warm the block cache).
  ThreadPool pool(4);
  ChainOptions par = base;
  par.pool = &pool;
  par.store.block_cache_bytes = 8 << 20;
  ChainManager parallel("parallel", nullptr);
  ASSERT_TRUE(parallel.Open(par, dir.path()).ok());

  EXPECT_EQ(serial.height(), parallel.height());
  EXPECT_EQ(serial.height(), 61u);
  EXPECT_EQ(serial.tip_hash().ToHex(), parallel.tip_hash().ToHex());
  EXPECT_EQ(serial.next_tid(), parallel.next_tid());
  for (int s = 0; s < 5; s++) {
    EXPECT_EQ(digest_of(serial, "s" + std::to_string(s)),
              digest_of(parallel, "s" + std::to_string(s)));
  }
  const BlockStore::CacheStats stats = parallel.cache_stats();
  EXPECT_GT(stats.block_capacity, 0u);
  EXPECT_GT(stats.block_usage, 0u);

  ASSERT_TRUE(serial.Close().ok());
  ASSERT_TRUE(parallel.Close().ok());

  // Closed chains refuse record/header reads instead of touching the store.
  std::string record;
  EXPECT_FALSE(serial.GetBlockRecord(0, &record).ok());
  BlockHeader header;
  EXPECT_FALSE(serial.GetHeader(0, &header).ok());
}

// ReadBlocks (the readahead-batched path) must agree with ReadBlock.
TEST(ParallelReplayTest, ReadBlocksMatchesReadBlock) {
  ChainOptions options;
  options.store.segment_size = 8 << 10;
  TestChain chain("readblocks", options);
  Timestamp ts = 0;
  for (int b = 0; b < 25; b++) {
    std::vector<Transaction> txns;
    for (int i = 0; i < 4; i++) {
      txns.push_back(
          MakeTxn("t", "s", ts += 10, {Value::Int(b * 100 + i)}));
    }
    ASSERT_TRUE(chain.AppendBlock(std::move(txns)).ok());
  }
  const uint64_t n = chain.store()->num_blocks();
  std::vector<std::shared_ptr<const Block>> batched;
  ASSERT_TRUE(chain.store()->ReadBlocks(0, n, &batched).ok());
  ASSERT_EQ(batched.size(), n);
  for (uint64_t h = 0; h < n; h++) {
    std::shared_ptr<const Block> single;
    ASSERT_TRUE(chain.store()->ReadBlock(h, &single).ok());
    std::string a, b;
    single->EncodeTo(&a);
    batched[h]->EncodeTo(&b);
    EXPECT_EQ(a, b) << "height " << h;
  }
  // Partial range crossing a segment boundary.
  std::vector<std::shared_ptr<const Block>> middle;
  ASSERT_TRUE(chain.store()->ReadBlocks(n / 3, n / 2, &middle).ok());
  ASSERT_EQ(middle.size(), n / 2);
  for (uint64_t i = 0; i < middle.size(); i++) {
    EXPECT_EQ(middle[i]->height(), n / 3 + i);
  }
}

}  // namespace
}  // namespace sebdb
