// Failure-injection tests: partitions healed by gossip, node restart with
// chain recovery, lossy networks, Byzantine-style corrupt blocks, and
// snapshot pinning when nodes diverge in height (the paper's motivation for
// the two-phase authenticated protocol, §VI).
#include <gtest/gtest.h>

#include <cstdio>

#include "common/coding.h"
#include "core/node.h"
#include "core/thin_client.h"
#include "storage/block_store.h"
#include "tests/test_util.h"
#include "network/sim_network.h"

namespace sebdb {
namespace {

using testing_util::MakeTxn;
using testing_util::ScratchDir;

bool WaitForHeight(SebdbNode* node, uint64_t height, int timeout_ms = 15000) {
  for (int i = 0; i < timeout_ms / 10; i++) {
    if (node->chain().height() >= height) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

NodeOptions BaseOptions(const std::string& id, const std::string& dir,
                        const std::vector<std::string>& participants) {
  NodeOptions options;
  options.node_id = id;
  options.data_dir = dir + "/" + id;
  options.consensus = ConsensusKind::kKafka;
  options.participants = participants;
  options.consensus_options.max_batch_txns = 5;
  options.consensus_options.batch_timeout_millis = 20;
  options.gossip.interval_millis = 10;
  return options;
}

TEST(FaultTest, PartitionedNodeCatchesUpViaGossip) {
  ScratchDir dir("fault_partition");
  SimNetwork net;
  KeyStore keystore;
  std::vector<std::string> ids = {"n0", "n1", "n2"};
  for (const auto& id : ids) keystore.AddIdentity(id, "s-" + id);

  std::vector<std::unique_ptr<SebdbNode>> nodes;
  for (const auto& id : ids) {
    auto node = std::make_unique<SebdbNode>(BaseOptions(id, dir.path(), ids),
                                            &keystore, nullptr);
    ASSERT_TRUE(node->Start(&net).ok());
    nodes.push_back(std::move(node));
  }
  ResultSet rs;
  ASSERT_TRUE(nodes[0]->ExecuteSql("CREATE t (v int)", {}, &rs).ok());

  // Cut n2 off from everyone.
  net.SetLinkDown("n2", "n0", true);
  net.SetLinkDown("n2", "n1", true);
  for (int i = 0; i < 5; i++) {
    ASSERT_TRUE(nodes[0]
                    ->ExecuteSql("INSERT INTO t VALUES (" + std::to_string(i) +
                                     ")",
                                 {}, &rs)
                    .ok());
  }
  uint64_t height = nodes[0]->chain().height();
  EXPECT_LT(nodes[2]->chain().height(), height);

  // Heal the partition: gossip anti-entropy recovers the missing blocks.
  net.SetLinkDown("n2", "n0", false);
  net.SetLinkDown("n2", "n1", false);
  ASSERT_TRUE(WaitForHeight(nodes[2].get(), height));
  EXPECT_EQ(nodes[2]->chain().tip_hash(), nodes[0]->chain().tip_hash());
  ResultSet result;
  ASSERT_TRUE(nodes[2]->ExecuteSql("SELECT count(*) FROM t", {}, &result).ok());
  EXPECT_EQ(result.rows[0][0].AsInt(), 5);
  for (auto& node : nodes) node->Stop();
}

TEST(FaultTest, NodeRestartRecoversChainAndIndexes) {
  ScratchDir dir("fault_restart");
  SimNetwork net;
  KeyStore keystore;
  std::vector<std::string> ids = {"n0", "n1"};
  for (const auto& id : ids) keystore.AddIdentity(id, "s-" + id);

  uint64_t height;
  {
    SebdbNode n0(BaseOptions("n0", dir.path(), ids), &keystore, nullptr);
    SebdbNode n1(BaseOptions("n1", dir.path(), ids), &keystore, nullptr);
    ASSERT_TRUE(n0.Start(&net).ok());
    ASSERT_TRUE(n1.Start(&net).ok());
    ResultSet rs;
    ASSERT_TRUE(n0.ExecuteSql("CREATE t (v int)", {}, &rs).ok());
    for (int i = 0; i < 7; i++) {
      ASSERT_TRUE(n0.ExecuteSql(
                        "INSERT INTO t VALUES (" + std::to_string(i) + ")", {},
                        &rs)
                      .ok());
    }
    ASSERT_TRUE(n1.ExecuteSql("CREATE INDEX ON t(v)", {}, &rs).ok());
    height = n0.chain().height();
    ASSERT_TRUE(WaitForHeight(&n1, height));
    n0.Stop();
    n1.Stop();
  }

  // n1 restarts from disk: catalog, block index and data all replayed.
  SebdbNode revived(BaseOptions("n1", dir.path(), ids), &keystore, nullptr);
  ASSERT_TRUE(revived.Start(&net).ok());
  EXPECT_EQ(revived.chain().height(), height);
  EXPECT_TRUE(revived.chain().catalog()->HasTable("t"));
  ResultSet rs;
  ASSERT_TRUE(revived.ExecuteSql("SELECT * FROM t WHERE v >= 3", {}, &rs).ok());
  EXPECT_EQ(rs.num_rows(), 4u);
  // The user-created index was recorded in the index manifest and rebuilt
  // during replay — usable immediately, and re-creating it is an error.
  ExecOptions layered;
  layered.access_path = AccessPath::kLayered;
  ASSERT_TRUE(
      revived.ExecuteSql("SELECT * FROM t WHERE v BETWEEN 2 AND 4", layered,
                         &rs)
          .ok());
  EXPECT_EQ(rs.num_rows(), 3u);
  EXPECT_TRUE(revived.ExecuteSql("CREATE INDEX ON t(v)", {}, &rs)
                  .IsInvalidArgument());
  revived.Stop();
}

TEST(FaultTest, LossyNetworkStillConverges) {
  ScratchDir dir("fault_lossy");
  SimNetworkOptions net_options;
  net_options.drop_rate = 0.05;  // 5% message loss
  net_options.seed = 99;
  SimNetwork net(net_options);
  KeyStore keystore;
  std::vector<std::string> ids = {"n0", "n1", "n2"};
  for (const auto& id : ids) keystore.AddIdentity(id, "s-" + id);

  std::vector<std::unique_ptr<SebdbNode>> nodes;
  for (const auto& id : ids) {
    NodeOptions options = BaseOptions(id, dir.path(), ids);
    // A dropped commit-response should fail fast, not hang the test.
    options.write_timeout_millis = 1500;
    auto node = std::make_unique<SebdbNode>(options, &keystore, nullptr);
    ASSERT_TRUE(node->Start(&net).ok());
    nodes.push_back(std::move(node));
  }
  ResultSet rs;
  // Retry the DDL: with 5% loss its commit response may drop even though
  // the schema committed ("table exists" then counts as success).
  bool created = false;
  for (int attempt = 0; attempt < 5 && !created; attempt++) {
    Status s = nodes[0]->ExecuteSql("CREATE t (v int)", {}, &rs);
    created = s.ok() || nodes[0]->chain().catalog()->HasTable("t");
  }
  ASSERT_TRUE(created);
  // Direct async submits: some deliver-messages may drop; gossip repairs.
  int accepted = 0;
  for (int i = 0; i < 10; i++) {
    Transaction txn;
    if (!nodes[0]
             ->MakeInsertTransaction("n0", "t", {Value::Int(i)}, &txn)
             .ok()) {
      continue;
    }
    if (nodes[0]->SubmitAndWait(std::move(txn)).ok()) accepted++;
  }
  EXPECT_GT(accepted, 0);
  uint64_t height = nodes[0]->chain().height();
  for (auto& node : nodes) {
    EXPECT_TRUE(WaitForHeight(node.get(), height)) << node->node_id();
  }
  for (auto& node : nodes) node->Stop();
}

TEST(FaultTest, CorruptGossipBlockRejected) {
  ScratchDir dir("fault_corrupt");
  SimNetwork net;
  KeyStore keystore;
  keystore.AddIdentity("n0", "s-n0");
  std::vector<std::string> ids = {"n0"};
  SebdbNode node(BaseOptions("n0", dir.path(), ids), &keystore, nullptr);
  ASSERT_TRUE(node.Start(&net).ok());
  ResultSet rs;
  ASSERT_TRUE(node.ExecuteSql("CREATE t (v int)", {}, &rs).ok());
  ASSERT_TRUE(node.ExecuteSql("INSERT INTO t VALUES (1)", {}, &rs).ok());

  // A Byzantine peer forges a block record: bad merkle root / hash.
  std::string record;
  ASSERT_TRUE(node.GetBlockRecord(1, &record).ok());
  std::string forged = record;
  forged[forged.size() - 5] ^= 0x7;
  uint64_t height_before = node.ChainHeight();
  EXPECT_FALSE(node.ApplyBlockRecord(height_before, forged).ok());
  EXPECT_EQ(node.ChainHeight(), height_before);

  // An unsigned transaction inside an otherwise valid block is also caught
  // (signature verification on the gossip path).
  Transaction unsigned_txn = MakeTxn("t", "mallory", 999, {Value::Int(9)});
  BlockBuilder builder;
  builder.SetPrevHash(node.chain().tip_hash())
      .SetHeight(height_before)
      .SetTimestamp(node.chain().height() * 1000000)
      .SetFirstTid(node.chain().next_tid());
  builder.AddTransaction(std::move(unsigned_txn));
  Block evil = std::move(builder).Build("evil-sig");
  std::string evil_record;
  evil.EncodeTo(&evil_record);
  EXPECT_FALSE(node.ApplyBlockRecord(height_before, evil_record).ok());
  EXPECT_EQ(node.ChainHeight(), height_before);
  node.Stop();
}

// ---- torn-write matrix over the block store's on-disk frames ----

Block MakeStoreBlock(BlockId height, const Hash256& prev) {
  BlockBuilder builder;
  builder.SetHeight(height).SetPrevHash(prev).SetTimestamp(1000 + height)
      .SetFirstTid(1 + height * 2);
  builder.AddTransaction(MakeTxn("t", "sender", 1000 + height,
                                 {Value::Int(static_cast<int64_t>(height)),
                                  Value::Str("payload")}));
  builder.AddTransaction(MakeTxn("t", "sender", 1000 + height,
                                 {Value::Int(-1), Value::Str("more")}));
  return std::move(builder).Build("packager-sig");
}

// Writes a 3-block store and returns the raw segment bytes plus the offset
// where the last frame starts, and the encodings of the intact blocks.
void BuildSegmentImage(std::string* image, size_t* last_frame_start,
                       std::vector<std::string>* encodings) {
  ScratchDir dir("fault_torn_build");
  BlockStore store;
  Hash256 prev{};
  ASSERT_TRUE(store.Open(BlockStoreOptions(), dir.path()).ok());
  for (BlockId h = 0; h < 3; h++) {
    Block block = MakeStoreBlock(h, prev);
    prev = block.header().block_hash;
    std::string record;
    block.EncodeTo(&record);
    encodings->push_back(std::move(record));
    ASSERT_TRUE(store.Append(block).ok());
  }
  store.Close();

  std::vector<std::string> files;
  ASSERT_TRUE(ListDir(dir.path(), &files).ok());
  ASSERT_EQ(files.size(), 1u);
  FILE* f = fopen((dir.path() + "/" + files[0]).c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[4096];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), f)) > 0) image->append(buf, n);
  fclose(f);

  // Walk the first two frames: [magic u32][len u32][payload][crc u32].
  size_t offset = 0;
  for (int i = 0; i < 2; i++) {
    uint32_t len = DecodeFixed32(image->data() + offset + 4);
    offset += 8 + len + 4;
  }
  *last_frame_start = offset;
  ASSERT_LT(offset, image->size());
}

void WriteSegment(const std::string& dir, const std::string& bytes) {
  ASSERT_TRUE(CreateDirIfMissing(dir).ok());
  FILE* f = fopen((dir + "/seg_000000.blk").c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  fclose(f);
}

// Checks the recovered store holds exactly `expect` intact blocks.
void ExpectRecovered(const std::string& dir, size_t expect, bool truncated,
                     const std::vector<std::string>& encodings) {
  BlockStore store;
  ASSERT_TRUE(store.Open(BlockStoreOptions(), dir).ok());
  ASSERT_EQ(store.num_blocks(), expect);
  for (size_t h = 0; h < expect; h++) {
    std::string record;
    ASSERT_TRUE(store.ReadRawRecord(h, &record).ok()) << "height " << h;
    ASSERT_EQ(record, encodings[h]) << "height " << h;
  }
  EXPECT_EQ(store.recovery_stats().tail_truncated, truncated);
  store.Close();
}

// Truncate the segment at EVERY byte boundary of the last frame — inside
// the 8-byte header, the payload, and the 4-byte CRC trailer — and reopen:
// recovery must come back with exactly the two intact blocks.
TEST(FaultTest, TornWriteMatrixRecoversIntactPrefix) {
  std::string image;
  size_t last_frame_start;
  std::vector<std::string> encodings;
  BuildSegmentImage(&image, &last_frame_start, &encodings);

  ScratchDir dir("fault_torn_matrix");
  size_t case_id = 0;
  for (size_t cut = last_frame_start; cut < image.size(); cut++) {
    SCOPED_TRACE("cut at byte " + std::to_string(cut));
    std::string sub = dir.path() + "/cut_" + std::to_string(case_id++);
    WriteSegment(sub, image.substr(0, cut));
    // A cut exactly at the frame boundary is a clean (not torn) tail.
    ExpectRecovered(sub, 2, /*truncated=*/cut > last_frame_start, encodings);
  }
  // Untouched image sanity check: all three blocks, no truncation.
  std::string sub = dir.path() + "/intact";
  WriteSegment(sub, image);
  ExpectRecovered(sub, 3, /*truncated=*/false, encodings);
}

// Flip one bit at several positions of the last frame (header magic, header
// length, payload, CRC trailer): the defective record is dropped, the two
// intact blocks survive.
TEST(FaultTest, FlippedBitInTailFrameRecoversIntactPrefix) {
  std::string image;
  size_t last_frame_start;
  std::vector<std::string> encodings;
  BuildSegmentImage(&image, &last_frame_start, &encodings);

  ScratchDir dir("fault_flip");
  const size_t frame_len = image.size() - last_frame_start;
  const size_t positions[] = {
      0,                  // header magic
      5,                  // header length field
      8,                  // first payload byte
      8 + frame_len / 3,  // mid-payload
      frame_len - 5,      // last payload byte
      frame_len - 2,      // CRC trailer
  };
  size_t case_id = 0;
  for (size_t pos : positions) {
    SCOPED_TRACE("flip at frame byte " + std::to_string(pos));
    std::string flipped = image;
    flipped[last_frame_start + pos] ^= 0x40;
    std::string sub = dir.path() + "/flip_" + std::to_string(case_id++);
    WriteSegment(sub, flipped);
    ExpectRecovered(sub, 2, /*truncated=*/true, encodings);
  }
}

// Corruption that is NOT a crash artifact — a flipped bit in a non-tail
// segment — must refuse to open rather than silently drop committed blocks
// from the middle of the chain.
TEST(FaultTest, NonTailSegmentCorruptionRefusesToOpen) {
  ScratchDir dir("fault_midchain");
  BlockStoreOptions options;
  options.segment_size = 512;  // force several segments
  Hash256 prev{};
  {
    BlockStore store;
    ASSERT_TRUE(store.Open(options, dir.path()).ok());
    for (BlockId h = 0; h < 6; h++) {
      Block block = MakeStoreBlock(h, prev);
      prev = block.header().block_hash;
      ASSERT_TRUE(store.Append(block).ok());
    }
    store.Close();
  }
  std::vector<std::string> files;
  ASSERT_TRUE(ListDir(dir.path(), &files).ok());
  ASSERT_GT(files.size(), 1u);

  FILE* f = fopen((dir.path() + "/seg_000000.blk").c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  fseek(f, 20, SEEK_SET);
  int c = fgetc(f);
  fseek(f, 20, SEEK_SET);
  fputc(c ^ 0xff, f);
  fclose(f);

  BlockStore store;
  EXPECT_TRUE(store.Open(options, dir.path()).IsCorruption());
}

TEST(FaultTest, AuthQuerySnapshotAcrossDivergentHeights) {
  // Paper §VI: nodes run at different speeds, so the thin client pins the
  // height h from phase 1 and auxiliary nodes answer at that snapshot.
  ScratchDir dir("fault_snapshot");
  SimNetwork net;
  KeyStore keystore;
  std::vector<std::string> ids = {"n0", "n1"};
  for (const auto& id : ids) keystore.AddIdentity(id, "s-" + id);

  SebdbNode n0(BaseOptions("n0", dir.path(), ids), &keystore, nullptr);
  SebdbNode n1(BaseOptions("n1", dir.path(), ids), &keystore, nullptr);
  ASSERT_TRUE(n0.Start(&net).ok());
  ASSERT_TRUE(n1.Start(&net).ok());
  ResultSet rs;
  ASSERT_TRUE(n0.ExecuteSql("CREATE t (v int)", {}, &rs).ok());
  for (int i = 0; i < 6; i++) {
    ASSERT_TRUE(n0.ExecuteSql(
                      "INSERT INTO t VALUES (" + std::to_string(i) + ")", {},
                      &rs)
                    .ok());
  }
  uint64_t height = n0.chain().height();
  ASSERT_TRUE(WaitForHeight(&n1, height));

  // Now partition n1 and commit more data on n0 only.
  net.SetLinkDown("n0", "n1", true);
  for (int i = 6; i < 12; i++) {
    ASSERT_TRUE(n0.ExecuteSql(
                      "INSERT INTO t VALUES (" + std::to_string(i) + ")", {},
                      &rs)
                    .ok());
  }
  ASSERT_GT(n0.chain().height(), n1.chain().height());

  // Phase 1 at the lagging node pins its height; the auxiliary digest from
  // the leading node at that same height matches.
  AuthQueryResponse response;
  ASSERT_TRUE(n1.AuthProveTrace(/*by_sender=*/true, "n0", &response).ok());
  Hash256 digest;
  ASSERT_TRUE(n0.AuthDigestTrace(true, "n0", response.chain_height, &digest)
                  .ok());
  Value key = Value::Str("n0");
  std::vector<std::string> records;
  ASSERT_TRUE(AuthenticatedLayeredIndex::VerifyResponse(
                  response, &key, &key,
                  [](const Slice& record, Value* out) -> Status {
                    Transaction txn;
                    Slice input = record;
                    Status s = Transaction::DecodeFrom(&input, &txn);
                    if (!s.ok()) return s;
                    *out = Value::Str(txn.sender());
                    return Status::OK();
                  },
                  {digest}, 1, &records)
                  .ok());
  // Only the pre-partition transactions are covered by the snapshot: the
  // schema txn plus 6 inserts.
  EXPECT_EQ(records.size(), 7u);
  n0.Stop();
  n1.Stop();
}

}  // namespace
}  // namespace sebdb
