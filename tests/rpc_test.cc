// Tests for the RPC layer and the thin client running over the network
// transport (the paper's remote thin client, §VI).
#include <gtest/gtest.h>

#include "core/node.h"
#include "core/thin_client.h"
#include "core/thin_client_transport.h"
#include "network/rpc.h"
#include "tests/test_util.h"

namespace sebdb {
namespace {

using testing_util::ScratchDir;

TEST(RpcTest, CallRoundTrip) {
  SimNetwork net;
  RpcDispatcher dispatcher;
  dispatcher.RegisterMethod(
      "echo", [](const Slice& request, std::string* response) {
        *response = "echo:" + request.ToString();
        return Status::OK();
      });
  dispatcher.RegisterMethod(
      "fail", [](const Slice&, std::string*) {
        return Status::InvalidArgument("nope");
      });
  ASSERT_TRUE(net.Register("server",
                           [&](const Message& m) {
                             dispatcher.HandleMessage(&net, "server", m);
                           })
                  .ok());

  RpcClient client("client-1", &net);
  std::string response;
  ASSERT_TRUE(client.Call("server", "echo", "hello", &response).ok());
  EXPECT_EQ(response, "echo:hello");

  // Server-side errors propagate with code and message.
  Status s = client.Call("server", "fail", "", &response);
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "nope");

  // Unknown method and unknown server.
  EXPECT_TRUE(client.Call("server", "missing", "", &response).IsNotFound());
  EXPECT_TRUE(
      client.Call("ghost", "echo", "", &response, 200).IsTimedOut());
}

TEST(RpcTest, ConcurrentCallsCorrelate) {
  SimNetworkOptions options;
  options.min_latency_micros = 100;
  options.max_latency_micros = 2000;  // responses arrive out of order
  SimNetwork net(options);
  RpcDispatcher dispatcher;
  dispatcher.RegisterMethod("id", [](const Slice& request,
                                     std::string* response) {
    *response = request.ToString();
    return Status::OK();
  });
  ASSERT_TRUE(net.Register("server",
                           [&](const Message& m) {
                             dispatcher.HandleMessage(&net, "server", m);
                           })
                  .ok());
  RpcClient client("client-1", &net);
  std::vector<std::thread> threads;
  std::atomic<int> correct{0};
  for (int i = 0; i < 16; i++) {
    threads.emplace_back([&, i] {
      std::string response;
      if (client.Call("server", "id", std::to_string(i), &response).ok() &&
          response == std::to_string(i)) {
        correct++;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(correct.load(), 16);
}

TEST(RpcTest, ThinClientOverNetworkTransport) {
  ScratchDir dir("rpc_thin");
  SimNetwork net;
  KeyStore keystore;
  std::vector<std::string> ids = {"n0", "n1", "n2"};
  for (const auto& id : ids) keystore.AddIdentity(id, "s-" + id);
  keystore.AddIdentity("org1", "s-org1");

  std::vector<std::unique_ptr<SebdbNode>> nodes;
  for (const auto& id : ids) {
    NodeOptions options;
    options.node_id = id;
    options.data_dir = dir.path() + "/" + id;
    options.participants = ids;
    options.consensus_options.max_batch_txns = 5;
    options.consensus_options.batch_timeout_millis = 20;
    options.gossip.interval_millis = 10;
    auto node = std::make_unique<SebdbNode>(options, &keystore, nullptr);
    ASSERT_TRUE(node->Start(&net).ok());
    nodes.push_back(std::move(node));
  }
  ResultSet rs;
  ASSERT_TRUE(nodes[0]->ExecuteSql("CREATE d (amount int)", {}, &rs).ok());
  for (int i = 0; i < 20; i++) {
    Transaction txn;
    ASSERT_TRUE(nodes[0]
                    ->MakeInsertTransaction("org1", "d", {Value::Int(i)},
                                            &txn)
                    .ok());
    ASSERT_TRUE(nodes[0]->SubmitAndWait(std::move(txn)).ok());
  }
  uint64_t height = nodes[0]->chain().height();
  for (auto& node : nodes) {
    for (int i = 0; i < 1000 && node->chain().height() < height; i++) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_GE(node->chain().height(), height);
    ASSERT_TRUE(node->ExecuteSql("CREATE INDEX ON d(amount)", {}, &rs).ok());
  }

  // The thin client lives at its own network address; every call below is
  // an RPC round trip through the simulated network.
  ThinClient client(
      std::make_unique<RpcThinTransport>("thin-client", &net, ids));
  ASSERT_TRUE(client.SyncHeaders().ok());
  EXPECT_EQ(client.num_headers(), height);

  Schema schema;
  ASSERT_TRUE(nodes[0]->chain().catalog()->GetSchema("d", &schema).ok());
  Value lo = Value::Int(5), hi = Value::Int(9);
  std::vector<Transaction> results;
  AuthQueryStats stats;
  ASSERT_TRUE(client
                  .AuthRangeQuery("d", "amount", schema.ColumnIndex("amount"),
                                  &lo, &hi, 2, 2, &results, &stats)
                  .ok());
  EXPECT_EQ(results.size(), 5u);

  results.clear();
  ASSERT_TRUE(
      client.AuthTraceQuery(true, "org1", 2, 2, &results, &stats).ok());
  EXPECT_EQ(results.size(), 20u);

  results.clear();
  ASSERT_TRUE(
      client.AuthTraceTwoDimQuery("org1", "d", 2, 2, &results, &stats).ok());
  EXPECT_EQ(results.size(), 20u);

  // Basic approach over the wire too.
  std::vector<Transaction> basic;
  AuthQueryStats basic_stats;
  ASSERT_TRUE(client
                  .BasicRangeQuery("d", schema.ColumnIndex("amount"), &lo,
                                   &hi, &basic, &basic_stats)
                  .ok());
  EXPECT_EQ(basic.size(), 5u);

  for (auto& node : nodes) node->Stop();
}

TEST(RpcTest, PartitionedServerTimesOut) {
  ScratchDir dir("rpc_partition");
  SimNetwork net;
  KeyStore keystore;
  keystore.AddIdentity("n0", "s");
  NodeOptions options;
  options.node_id = "n0";
  options.data_dir = dir.path() + "/n0";
  options.participants = {"n0"};
  options.enable_gossip = false;
  SebdbNode node(options, &keystore, nullptr);
  ASSERT_TRUE(node.Start(&net).ok());

  RpcThinTransport transport("thin", &net, {"n0"},
                             /*call_timeout_millis=*/300);
  net.SetLinkDown("thin", "n0", true);
  std::vector<BlockHeader> headers;
  EXPECT_TRUE(transport.GetHeaders("n0", 0, &headers).IsTimedOut());
  net.SetLinkDown("thin", "n0", false);
  EXPECT_TRUE(transport.GetHeaders("n0", 0, &headers).ok());
  EXPECT_EQ(headers.size(), 1u);  // genesis
  node.Stop();
}

}  // namespace
}  // namespace sebdb
