// Tests for the RPC layer and the thin client running over the network
// transport (the paper's remote thin client, §VI).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/clock.h"
#include "common/coding.h"
#include "core/node.h"
#include "core/thin_client.h"
#include "core/thin_client_transport.h"
#include "network/rpc.h"
#include "tests/test_util.h"
#include "network/sim_network.h"

namespace sebdb {
namespace {

using testing_util::ScratchDir;

TEST(RpcTest, CallRoundTrip) {
  SimNetwork net;
  RpcDispatcher dispatcher;
  dispatcher.RegisterMethod(
      "echo", [](const Slice& request, std::string* response) {
        *response = "echo:" + request.ToString();
        return Status::OK();
      });
  dispatcher.RegisterMethod(
      "fail", [](const Slice&, std::string*) {
        return Status::InvalidArgument("nope");
      });
  ASSERT_TRUE(net.Register("server",
                           [&](const Message& m) {
                             dispatcher.HandleMessage(&net, "server", m);
                           })
                  .ok());

  RpcClient client("client-1", &net);
  std::string response;
  ASSERT_TRUE(client.Call("server", "echo", "hello", &response).ok());
  EXPECT_EQ(response, "echo:hello");

  // Server-side errors propagate with code and message.
  Status s = client.Call("server", "fail", "", &response);
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "nope");

  // Unknown method and unknown server.
  EXPECT_TRUE(client.Call("server", "missing", "", &response).IsNotFound());
  EXPECT_TRUE(
      client.Call("ghost", "echo", "", &response, 200).IsTimedOut());
}

TEST(RpcTest, ConcurrentCallsCorrelate) {
  SimNetworkOptions options;
  options.min_latency_micros = 100;
  options.max_latency_micros = 2000;  // responses arrive out of order
  SimNetwork net(options);
  RpcDispatcher dispatcher;
  dispatcher.RegisterMethod("id", [](const Slice& request,
                                     std::string* response) {
    *response = request.ToString();
    return Status::OK();
  });
  ASSERT_TRUE(net.Register("server",
                           [&](const Message& m) {
                             dispatcher.HandleMessage(&net, "server", m);
                           })
                  .ok());
  RpcClient client("client-1", &net);
  std::vector<std::thread> threads;
  std::atomic<int> correct{0};
  for (int i = 0; i < 16; i++) {
    threads.emplace_back([&, i] {
      std::string response;
      if (client.Call("server", "id", std::to_string(i), &response).ok() &&
          response == std::to_string(i)) {
        correct++;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(correct.load(), 16);
}

TEST(RpcTest, ThinClientOverNetworkTransport) {
  ScratchDir dir("rpc_thin");
  SimNetwork net;
  KeyStore keystore;
  std::vector<std::string> ids = {"n0", "n1", "n2"};
  for (const auto& id : ids) keystore.AddIdentity(id, "s-" + id);
  keystore.AddIdentity("org1", "s-org1");

  std::vector<std::unique_ptr<SebdbNode>> nodes;
  for (const auto& id : ids) {
    NodeOptions options;
    options.node_id = id;
    options.data_dir = dir.path() + "/" + id;
    options.participants = ids;
    options.consensus_options.max_batch_txns = 5;
    options.consensus_options.batch_timeout_millis = 20;
    options.gossip.interval_millis = 10;
    auto node = std::make_unique<SebdbNode>(options, &keystore, nullptr);
    ASSERT_TRUE(node->Start(&net).ok());
    nodes.push_back(std::move(node));
  }
  ResultSet rs;
  ASSERT_TRUE(nodes[0]->ExecuteSql("CREATE d (amount int)", {}, &rs).ok());
  for (int i = 0; i < 20; i++) {
    Transaction txn;
    ASSERT_TRUE(nodes[0]
                    ->MakeInsertTransaction("org1", "d", {Value::Int(i)},
                                            &txn)
                    .ok());
    ASSERT_TRUE(nodes[0]->SubmitAndWait(std::move(txn)).ok());
  }
  uint64_t height = nodes[0]->chain().height();
  for (auto& node : nodes) {
    for (int i = 0; i < 1000 && node->chain().height() < height; i++) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_GE(node->chain().height(), height);
    ASSERT_TRUE(node->ExecuteSql("CREATE INDEX ON d(amount)", {}, &rs).ok());
  }

  // The thin client lives at its own network address; every call below is
  // an RPC round trip through the simulated network.
  ThinClient client(
      std::make_unique<RpcThinTransport>("thin-client", &net, ids));
  ASSERT_TRUE(client.SyncHeaders().ok());
  EXPECT_EQ(client.num_headers(), height);

  Schema schema;
  ASSERT_TRUE(nodes[0]->chain().catalog()->GetSchema("d", &schema).ok());
  Value lo = Value::Int(5), hi = Value::Int(9);
  std::vector<Transaction> results;
  AuthQueryStats stats;
  ASSERT_TRUE(client
                  .AuthRangeQuery("d", "amount", schema.ColumnIndex("amount"),
                                  &lo, &hi, 2, 2, &results, &stats)
                  .ok());
  EXPECT_EQ(results.size(), 5u);

  results.clear();
  ASSERT_TRUE(
      client.AuthTraceQuery(true, "org1", 2, 2, &results, &stats).ok());
  EXPECT_EQ(results.size(), 20u);

  results.clear();
  ASSERT_TRUE(
      client.AuthTraceTwoDimQuery("org1", "d", 2, 2, &results, &stats).ok());
  EXPECT_EQ(results.size(), 20u);

  // Basic approach over the wire too.
  std::vector<Transaction> basic;
  AuthQueryStats basic_stats;
  ASSERT_TRUE(client
                  .BasicRangeQuery("d", schema.ColumnIndex("amount"), &lo,
                                   &hi, &basic, &basic_stats)
                  .ok());
  EXPECT_EQ(basic.size(), 5u);

  for (auto& node : nodes) node->Stop();
}

TEST(RpcTest, RetryPolicySucceedsOnLossyNetwork) {
  SimNetworkOptions net_options;
  net_options.drop_rate = 0.5;  // half of all messages vanish
  net_options.seed = 1234;
  SimNetwork net(net_options);
  RpcDispatcher dispatcher;
  dispatcher.RegisterMethod("echo",
                            [](const Slice& request, std::string* response) {
                              *response = request.ToString();
                              return Status::OK();
                            });
  ASSERT_TRUE(net.Register("server",
                           [&](const Message& m) {
                             dispatcher.HandleMessage(&net, "server", m);
                           })
                  .ok());

  RpcClient client("client-1", &net);
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.attempt_timeout_millis = 50;
  policy.initial_backoff_millis = 2;
  policy.max_backoff_millis = 10;

  // Each attempt needs both its request and response delivered (p = 0.25),
  // so a single shot fails 75% of the time; five attempts push per-call
  // success to ~76%. Expect a clear majority of 20 calls through.
  int ok = 0;
  for (int i = 0; i < 20; i++) {
    std::string response;
    if (client.Call("server", "echo", std::to_string(i), &response, policy)
            .ok()) {
      ASSERT_EQ(response, std::to_string(i));
      ok++;
    }
  }
  EXPECT_GE(ok, 10);
  EXPECT_GT(client.retries(), 0u);
}

TEST(RpcTest, RetryPolicyRespectsOverallDeadline) {
  SimNetwork net;
  ASSERT_TRUE(net.Register("server", [](const Message&) {}).ok());
  RpcClient client("client-1", &net);
  net.SetLinkDown("client-1", "server", true);

  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.attempt_timeout_millis = 100;
  policy.overall_deadline_millis = 400;
  policy.initial_backoff_millis = 10;

  auto start = std::chrono::steady_clock::now();
  std::string response;
  Status s = client.Call("server", "echo", "x", &response, policy);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  EXPECT_TRUE(s.IsTimedOut());
  // Far fewer than 100 x 100ms attempts: the deadline cut the loop off.
  EXPECT_GE(elapsed, 300);
  EXPECT_LE(elapsed, 2000);
}

TEST(RpcTest, RetryPolicyDefaultsAndNonRetryableErrors) {
  SimNetwork net;
  RpcDispatcher dispatcher;
  dispatcher.RegisterMethod("fail", [](const Slice&, std::string*) {
    return Status::InvalidArgument("nope");
  });
  ASSERT_TRUE(net.Register("server",
                           [&](const Message& m) {
                             dispatcher.HandleMessage(&net, "server", m);
                           })
                  .ok());
  RpcClient client("client-1", &net);

  // Semantic errors surface immediately even under a retrying policy.
  std::string response;
  Status s = client.Call("server", "fail", "", &response,
                         RetryPolicy::WithAttempts(5));
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(client.retries(), 0u);

  // The default policy is one attempt: a timeout performs no retries.
  net.SetLinkDown("client-1", "server", true);
  RetryPolicy one;
  one.attempt_timeout_millis = 100;
  EXPECT_TRUE(client.Call("server", "fail", "", &response, one).IsTimedOut());
  EXPECT_EQ(client.retries(), 0u);
}

TEST(RpcTest, RetryPolicyHonorsServerRetryAfterHint) {
  SimNetwork net;
  RpcDispatcher dispatcher;
  std::atomic<int> calls{0};
  dispatcher.RegisterMethod(
      "flaky", [&](const Slice& request, std::string* response) -> Status {
        if (calls.fetch_add(1) < 2) {
          return Status::ResourceExhausted("busy", 150);
        }
        *response = request.ToString();
        return Status::OK();
      });
  ASSERT_TRUE(net.Register("server",
                           [&](const Message& m) {
                             dispatcher.HandleMessage(&net, "server", m);
                           })
                  .ok());
  RpcClient client("client-1", &net);
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.attempt_timeout_millis = 500;
  policy.initial_backoff_millis = 1;  // client-side guess: near-zero
  policy.max_backoff_millis = 2;
  policy.jitter = 0;

  auto start = std::chrono::steady_clock::now();
  std::string response;
  Status s = client.Call("server", "flaky", "x", &response, policy);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(response, "x");
  // Two rejections, each honoring the 150ms server hint instead of the
  // ~1-2ms client backoff.
  EXPECT_GE(elapsed, 250);
}

TEST(RpcTest, RetryAfterHintCappedByOverallDeadline) {
  SimNetwork net;
  RpcDispatcher dispatcher;
  dispatcher.RegisterMethod("busy", [](const Slice&, std::string*) -> Status {
    return Status::ResourceExhausted("overloaded", 5000);  // absurd hint
  });
  ASSERT_TRUE(net.Register("server",
                           [&](const Message& m) {
                             dispatcher.HandleMessage(&net, "server", m);
                           })
                  .ok());
  RpcClient client("client-1", &net);
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.attempt_timeout_millis = 100;
  policy.overall_deadline_millis = 300;

  auto start = std::chrono::steady_clock::now();
  std::string response;
  Status s = client.Call("server", "busy", "", &response, policy);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  EXPECT_FALSE(s.ok());
  // The 5000ms hint was clamped to the overall deadline, not slept in full.
  EXPECT_LE(elapsed, 2000);
}

TEST(RpcTest, BoundedQueueShedsWithRetryAfterHint) {
  SimNetwork net;
  RpcDispatcher dispatcher;
  dispatcher.RegisterMethod("slow", [](const Slice&, std::string* response) {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    *response = "done";
    return Status::OK();
  });
  RpcServerOptions server_options;
  server_options.workers = 1;
  server_options.max_queue = 1;
  dispatcher.Start(server_options);
  ASSERT_TRUE(net.Register("server",
                           [&](const Message& m) {
                             dispatcher.HandleMessage(&net, "server", m);
                           })
                  .ok());
  RpcClient client("client-1", &net);

  // Three concurrent calls: one executing, one queued, one shed.
  std::atomic<int> ok{0}, shed{0};
  std::atomic<int64_t> hint{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; i++) {
    threads.emplace_back([&] {
      std::string response;
      Status s = client.Call("server", "slow", "", &response, 5000);
      if (s.ok()) {
        ok++;
      } else if (s.IsResourceExhausted()) {
        shed++;
        hint.store(s.retry_after_millis());
      }
    });
    // Deterministic arrival order at the server's delivery thread.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(ok.load(), 2);
  EXPECT_EQ(shed.load(), 1);
  EXPECT_GT(hint.load(), 0);
  RpcServerStats stats = dispatcher.stats();
  EXPECT_EQ(stats.rejected_queue_full, 1u);
  EXPECT_EQ(stats.executed, 2u);
  dispatcher.Stop();
}

// Regression (cross-process deadlines): the wire carries a remaining-time
// BUDGET, not an absolute steady-clock instant. Before the fix the client
// shipped `SteadyNowMillis() + timeout` and the server compared it against
// its own steady clock — two clocks with unrelated epochs, so across real
// processes (TcpNetwork) a fresh request could look long-expired (dropped
// on arrival) or immortal at random. A hand-crafted frame carrying a small
// budget value, which the old decoding would have misread as an instant
// from the distant past and shed, must execute.
TEST(RpcTest, DeadlineBudgetSurvivesProcessBoundary) {
  SimNetwork net;
  RpcDispatcher dispatcher;
  std::atomic<int> executions{0};
  dispatcher.RegisterMethod("count", [&](const Slice&, std::string*) {
    executions++;
    return Status::OK();
  });
  RpcServerOptions server_options;
  server_options.workers = 1;
  dispatcher.Start(server_options);
  ASSERT_TRUE(net.Register("client-1", [](const Message&) {}).ok());

  // 5000ms of remaining budget. As an absolute instant this is ancient
  // history on any server that has been up a few seconds (the old bug).
  std::string payload;
  PutFixed64(&payload, 7);  // request id
  PutFixed64(&payload, 5000);
  PutLengthPrefixed(&payload, "count");
  PutLengthPrefixed(&payload, "");
  dispatcher.HandleMessage(
      &net, "server",
      Message{RpcDispatcher::kRequestType, "client-1", "server", payload});

  for (int i = 0; i < 500 && executions.load() < 1; i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(executions.load(), 1);
  RpcServerStats stats = dispatcher.stats();
  EXPECT_EQ(stats.executed, 1u);
  EXPECT_EQ(stats.received, 1u);
  dispatcher.Stop();
  net.Unregister("client-1");
}

// The re-anchored budget still bounds queue time: a request whose budget
// runs out while stuck behind a slow one is shed (expired_in_queue), not
// executed.
TEST(RpcTest, BudgetExpiresInQueueAfterReanchoring) {
  SimNetwork net;
  RpcDispatcher dispatcher;
  Mutex gate_mu;
  CondVar gate_cv;
  bool gate_open = false;
  std::atomic<int> executions{0};
  dispatcher.RegisterMethod("slow", [&](const Slice&, std::string*) {
    MutexLock lock(&gate_mu);
    while (!gate_open) gate_cv.Wait(gate_mu);
    return Status::OK();
  });
  dispatcher.RegisterMethod("count", [&](const Slice&, std::string*) {
    executions++;
    return Status::OK();
  });
  RpcServerOptions server_options;
  server_options.workers = 1;  // one worker: "slow" blocks the queue
  dispatcher.Start(server_options);
  ASSERT_TRUE(net.Register("client-1", [](const Message&) {}).ok());

  auto send = [&](uint64_t id, const std::string& method, uint64_t budget) {
    std::string payload;
    PutFixed64(&payload, id);
    PutFixed64(&payload, budget);
    PutLengthPrefixed(&payload, method);
    PutLengthPrefixed(&payload, "");
    dispatcher.HandleMessage(
        &net, "server",
        Message{RpcDispatcher::kRequestType, "client-1", "server", payload});
  };
  send(1, "slow", 0);       // occupies the only worker
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  send(2, "count", 30);     // 30ms budget, will die waiting
  send(3, "count", 0);      // no budget = no deadline, must execute

  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  {
    MutexLock lock(&gate_mu);
    gate_open = true;
    gate_cv.NotifyAll();
  }
  for (int i = 0; i < 500 && executions.load() < 1; i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(executions.load(), 1);  // id 3 only
  RpcServerStats stats = dispatcher.stats();
  EXPECT_EQ(stats.expired_in_queue, 1u);
  dispatcher.Stop();
  net.Unregister("client-1");
}

// Regression (request-id lifecycle across reconnects): calls pending
// against a peer whose connection drops must fail immediately with
// Unavailable — a retryable status RetryPolicy turns into a failover —
// instead of hanging until the call deadline.
TEST(RpcTest, PendingCallsFailFastOnPeerDown) {
  SimNetwork net;
  RpcDispatcher dispatcher;  // never answers: no methods, never registered
  (void)dispatcher;
  ASSERT_TRUE(
      net.Register("server", [](const Message&) { /* swallow */ }).ok());

  RpcClient client("client-1", &net);
  std::atomic<bool> returned{false};
  Status observed;
  std::thread caller([&] {
    std::string response;
    // 60s deadline: only the fail-fast path can return quickly.
    observed = client.Call("server", "rpc.echo", "x", &response,
                           /*timeout_millis=*/60000);
    returned = true;
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_FALSE(returned.load());
  // The server endpoint goes away — SimNetwork fires the peer watcher just
  // like TcpNetwork does when a supervised connection dies.
  net.Unregister("server");
  for (int i = 0; i < 500 && !returned.load(); i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(returned.load()) << "call hung past peer-down";
  caller.join();
  EXPECT_TRUE(observed.IsUnavailable()) << observed.ToString();
  EXPECT_TRUE(RpcClient::IsRetryable(observed));
}

TEST(RpcTest, PartitionedServerTimesOut) {
  ScratchDir dir("rpc_partition");
  SimNetwork net;
  KeyStore keystore;
  keystore.AddIdentity("n0", "s");
  NodeOptions options;
  options.node_id = "n0";
  options.data_dir = dir.path() + "/n0";
  options.participants = {"n0"};
  options.enable_gossip = false;
  SebdbNode node(options, &keystore, nullptr);
  ASSERT_TRUE(node.Start(&net).ok());

  RpcThinTransport transport("thin", &net, {"n0"},
                             /*call_timeout_millis=*/300);
  net.SetLinkDown("thin", "n0", true);
  std::vector<BlockHeader> headers;
  EXPECT_TRUE(transport.GetHeaders("n0", 0, &headers).IsTimedOut());
  net.SetLinkDown("thin", "n0", false);
  EXPECT_TRUE(transport.GetHeaders("n0", 0, &headers).ok());
  EXPECT_EQ(headers.size(), 1u);  // genesis
  node.Stop();
}

}  // namespace
}  // namespace sebdb
