// Tests for aggregate queries (COUNT/SUM/AVG/MIN/MAX) and the cost model
// (paper Eqs. 1-3) including the planner's bitmap-vs-layered switch.
#include <gtest/gtest.h>

#include "sql/cost_model.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace sebdb {
namespace {

using testing_util::MakeTxn;
using testing_util::TestChain;

class AggregateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    chain_ = std::make_unique<TestChain>("aggregate");
    Schema schema;
    ASSERT_TRUE(Schema::Create("donate",
                               {{"donor", ValueType::kString},
                                {"amount", ValueType::kInt64}},
                               &schema)
                    .ok());
    Transaction schema_txn = Catalog::MakeSchemaTransaction(schema);
    schema_txn.set_sender("admin");
    schema_txn.set_ts(1);
    ASSERT_TRUE(chain_->AppendBlock({std::move(schema_txn)}).ok());

    // 5 blocks x 10 donate rows, amounts 0..49; donor cycles d0..d4.
    int amount = 0;
    for (int b = 0; b < 5; b++) {
      std::vector<Transaction> txns;
      for (int i = 0; i < 10; i++, amount++) {
        txns.push_back(MakeTxn("donate", "s", 100 + amount,
                               {Value::Str("d" + std::to_string(amount % 5)),
                                Value::Int(amount)}));
      }
      ASSERT_TRUE(chain_->AppendBlock(std::move(txns)).ok());
    }
    executor_ = std::make_unique<Executor>(chain_->store(), chain_->indexes(),
                                           chain_->catalog(), nullptr);
  }

  ResultSet Run(const std::string& sql) {
    ResultSet result;
    Status s = executor_->ExecuteSql(sql, {}, &result);
    EXPECT_TRUE(s.ok()) << sql << " -> " << s.ToString();
    return result;
  }

  std::unique_ptr<TestChain> chain_;
  std::unique_ptr<Executor> executor_;
};

TEST_F(AggregateTest, CountStar) {
  ResultSet rs = Run("SELECT count(*) FROM donate");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.columns[0], "count(*)");
  EXPECT_EQ(rs.rows[0][0].AsInt(), 50);
}

TEST_F(AggregateTest, CountWithPredicate) {
  ResultSet rs = Run("SELECT count(*) FROM donate WHERE amount < 10");
  EXPECT_EQ(rs.rows[0][0].AsInt(), 10);
}

TEST_F(AggregateTest, SumAvgMinMax) {
  ResultSet rs = Run(
      "SELECT sum(amount), avg(amount), min(amount), max(amount) FROM "
      "donate");
  ASSERT_EQ(rs.num_rows(), 1u);
  ASSERT_EQ(rs.columns.size(), 4u);
  EXPECT_DOUBLE_EQ(rs.rows[0][0].AsDouble(), 49.0 * 50 / 2);
  EXPECT_DOUBLE_EQ(rs.rows[0][1].AsDouble(), 24.5);
  EXPECT_EQ(rs.rows[0][2].AsInt(), 0);
  EXPECT_EQ(rs.rows[0][3].AsInt(), 49);
}

TEST_F(AggregateTest, MinMaxOnStrings) {
  ResultSet rs = Run("SELECT min(donor), max(donor) FROM donate");
  EXPECT_EQ(rs.rows[0][0].AsString(), "d0");
  EXPECT_EQ(rs.rows[0][1].AsString(), "d4");
}

TEST_F(AggregateTest, EmptyInput) {
  ResultSet rs =
      Run("SELECT count(*), sum(amount), min(amount) FROM donate WHERE "
          "amount > 1000");
  EXPECT_EQ(rs.rows[0][0].AsInt(), 0);
  EXPECT_TRUE(rs.rows[0][1].is_null());
  EXPECT_TRUE(rs.rows[0][2].is_null());
}

TEST_F(AggregateTest, SumOnStringFails) {
  ResultSet rs;
  EXPECT_TRUE(executor_->ExecuteSql("SELECT sum(donor) FROM donate", {}, &rs)
                  .IsInvalidArgument());
}

TEST_F(AggregateTest, MixedAggregateAndColumnRejected) {
  StatementPtr stmt;
  EXPECT_FALSE(
      ParseStatement("SELECT count(*), donor FROM donate", &stmt).ok());
  EXPECT_FALSE(ParseStatement("SELECT sum(*) FROM donate", &stmt).ok());
}

TEST_F(AggregateTest, AggregateOverJoinPath) {
  // Aggregates compose with every access path, including windows.
  ResultSet rs = Run("SELECT count(*) FROM donate WINDOW [0, 120]");
  EXPECT_GT(rs.rows[0][0].AsInt(), 0);
  EXPECT_LT(rs.rows[0][0].AsInt(), 50);
}

TEST_F(AggregateTest, GroupByDonor) {
  ResultSet rs = Run(
      "SELECT count(*), sum(amount) FROM donate GROUP BY donor");
  ASSERT_EQ(rs.num_rows(), 5u);  // d0..d4
  ASSERT_EQ(rs.columns.size(), 3u);
  EXPECT_EQ(rs.columns[0], "donate.donor");
  // Groups come out in key order; each donor has 10 donations.
  EXPECT_EQ(rs.rows[0][0].AsString(), "d0");
  EXPECT_EQ(rs.rows[4][0].AsString(), "d4");
  for (const auto& row : rs.rows) {
    EXPECT_EQ(row[1].AsInt(), 10);
  }
  // d0 holds amounts 0,5,...,45 = 225; d1: 1,6,...,46 = 235.
  EXPECT_DOUBLE_EQ(rs.rows[0][2].AsDouble(), 225.0);
  EXPECT_DOUBLE_EQ(rs.rows[1][2].AsDouble(), 235.0);
}

TEST_F(AggregateTest, GroupByWithPredicateAndDescLimit) {
  ResultSet rs = Run(
      "SELECT count(*) FROM donate WHERE amount >= 25 GROUP BY donor "
      "ORDER BY donor DESC LIMIT 2");
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(rs.rows[0][0].AsString(), "d4");
  EXPECT_EQ(rs.rows[1][0].AsString(), "d3");
}

TEST_F(AggregateTest, GroupByRequiresAggregates) {
  StatementPtr stmt;
  EXPECT_FALSE(
      ParseStatement("SELECT donor FROM donate GROUP BY donor", &stmt).ok());
}

TEST_F(AggregateTest, OrderByAndLimit) {
  ResultSet rs = Run(
      "SELECT donor, amount FROM donate ORDER BY amount DESC LIMIT 3");
  ASSERT_EQ(rs.num_rows(), 3u);
  EXPECT_EQ(rs.rows[0][1].AsInt(), 49);
  EXPECT_EQ(rs.rows[1][1].AsInt(), 48);
  EXPECT_EQ(rs.rows[2][1].AsInt(), 47);

  ResultSet asc = Run("SELECT amount FROM donate ORDER BY amount LIMIT 1");
  EXPECT_EQ(asc.rows[0][0].AsInt(), 0);

  // ORDER BY may use a column that the projection drops.
  ResultSet dropped =
      Run("SELECT donor FROM donate ORDER BY amount DESC LIMIT 1");
  EXPECT_EQ(dropped.rows[0][0].AsString(), "d4");  // amount 49 -> d4
}

TEST_F(AggregateTest, LimitZeroAndOversized) {
  EXPECT_EQ(Run("SELECT * FROM donate LIMIT 0").num_rows(), 0u);
  EXPECT_EQ(Run("SELECT * FROM donate LIMIT 1000").num_rows(), 50u);
}

// ---- cost model ----

TEST(CostModelTest, EquationsMonotone) {
  CostParams params;
  EXPECT_LT(ScanCost(100, params), ScanCost(200, params));
  EXPECT_LT(BitmapCost(10, params), ScanCost(100, params));
  EXPECT_LT(LayeredCost(10, params), LayeredCost(1000, params));
  // k = n degenerates bitmap to scan.
  EXPECT_DOUBLE_EQ(BitmapCost(100, params), ScanCost(100, params));
}

TEST(CostModelTest, LayeredWinsSmallResultsBitmapWinsLarge) {
  CostParams params;
  // Small result: per-tuple random reads beat rereading blocks.
  AccessPathCosts small;
  small.bitmap = BitmapCost(100, params);
  small.layered = LayeredCost(10, params);
  EXPECT_TRUE(small.LayeredWins());
  // Huge result: random I/O loses.
  AccessPathCosts large;
  large.bitmap = BitmapCost(100, params);
  large.layered = LayeredCost(10000000, params);
  EXPECT_FALSE(large.LayeredWins());
}

TEST(CostModelTest, PlannerSwitchesToBitmapForWideRanges) {
  TestChain chain("cost_planner");
  Schema schema;
  ASSERT_TRUE(
      Schema::Create("d", {{"amount", ValueType::kInt64}}, &schema).ok());
  Transaction schema_txn = Catalog::MakeSchemaTransaction(schema);
  schema_txn.set_sender("admin");
  schema_txn.set_ts(1);
  ASSERT_TRUE(chain.AppendBlock({std::move(schema_txn)}).ok());
  int amount = 0;
  for (int b = 0; b < 20; b++) {
    std::vector<Transaction> txns;
    for (int i = 0; i < 50; i++, amount++) {
      txns.push_back(MakeTxn("d", "s", 100 + amount, {Value::Int(amount)}));
    }
    ASSERT_TRUE(chain.AppendBlock(std::move(txns)).ok());
  }
  Executor executor(chain.store(), chain.indexes(), chain.catalog(), nullptr);
  ResultSet rs;
  ASSERT_TRUE(executor.ExecuteSql("CREATE INDEX ON d(amount)", {}, &rs).ok());

  // Narrow range: planner picks the layered index.
  ASSERT_TRUE(executor
                  .ExecuteSql(
                      "EXPLAIN SELECT * FROM d WHERE amount BETWEEN 10 AND 15",
                      {}, &rs)
                  .ok());
  EXPECT_NE(rs.plan.find("path=layered"), std::string::npos) << rs.plan;

  // Whole-domain range: the estimated result is every tuple, so random
  // reads lose to sequential bitmap reads.
  ASSERT_TRUE(
      executor
          .ExecuteSql(
              "EXPLAIN SELECT * FROM d WHERE amount BETWEEN 0 AND 999999", {},
              &rs)
          .ok());
  EXPECT_NE(rs.plan.find("path=bitmap"), std::string::npos) << rs.plan;
  EXPECT_NE(rs.plan.find("cost{"), std::string::npos);

  // Both paths return identical results either way.
  ResultSet narrow_bitmap, narrow_layered;
  ExecOptions bitmap, layered;
  bitmap.access_path = AccessPath::kBitmap;
  layered.access_path = AccessPath::kLayered;
  ASSERT_TRUE(executor
                  .ExecuteSql("SELECT * FROM d WHERE amount BETWEEN 0 AND "
                              "999999",
                              bitmap, &narrow_bitmap)
                  .ok());
  ASSERT_TRUE(executor
                  .ExecuteSql("SELECT * FROM d WHERE amount BETWEEN 0 AND "
                              "999999",
                              layered, &narrow_layered)
                  .ok());
  EXPECT_EQ(narrow_bitmap.num_rows(), 1000u);
  EXPECT_EQ(narrow_layered.num_rows(), 1000u);
}

TEST(CostModelTest, EstimateLayeredResultScalesWithRange) {
  LayeredIndexOptions options;
  options.histogram_buckets = 10;
  LayeredIndex index("e", options, [](const Transaction& txn, Value* out) {
    if (txn.values().empty()) return false;
    *out = txn.values()[0];
    return true;
  });
  std::vector<Transaction> txns;
  for (int i = 0; i < 1000; i++) {
    txns.push_back(MakeTxn("t", "s", i, {Value::Int(i)}));
  }
  BlockBuilder builder;
  builder.SetHeight(0).SetTimestamp(1).SetFirstTid(1);
  for (auto& txn : txns) builder.AddTransaction(std::move(txn));
  ASSERT_TRUE(index.AddBlock(std::move(builder).Build("s")).ok());

  Value narrow_lo = Value::Int(100), narrow_hi = Value::Int(140);
  Value wide_lo = Value::Int(0), wide_hi = Value::Int(999);
  uint64_t narrow = EstimateLayeredResult(index, &narrow_lo, &narrow_hi);
  uint64_t wide = EstimateLayeredResult(index, &wide_lo, &wide_hi);
  EXPECT_LT(narrow, wide);
  EXPECT_EQ(wide, 1000u);
  EXPECT_LE(narrow, 250u);  // one or two buckets of ~100
  EXPECT_GE(narrow, 50u);
}

}  // namespace
}  // namespace sebdb
