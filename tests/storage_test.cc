// Unit tests for src/storage: Merkle tree, block layout, block store
// (append/read/recover/segment roll/caches/corruption detection).
#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/block.h"
#include "storage/block_store.h"
#include "storage/merkle_tree.h"
#include "tests/test_util.h"

namespace sebdb {
namespace {

using testing_util::MakeTxn;
using testing_util::ScratchDir;

std::vector<Hash256> MakeLeaves(int n) {
  std::vector<Hash256> leaves;
  for (int i = 0; i < n; i++) {
    leaves.push_back(Sha256::Digest(Slice("leaf" + std::to_string(i))));
  }
  return leaves;
}

TEST(MerkleTreeTest, EmptyTreeHasZeroRoot) {
  MerkleTree tree({});
  EXPECT_TRUE(tree.root().IsZero());
  EXPECT_EQ(MerkleTree::ComputeRoot({}), Hash256{});
}

TEST(MerkleTreeTest, SingleLeafRootIsLeaf) {
  auto leaves = MakeLeaves(1);
  MerkleTree tree(leaves);
  EXPECT_EQ(tree.root(), leaves[0]);
}

class MerkleProofTest : public ::testing::TestWithParam<int> {};

TEST_P(MerkleProofTest, AllProofsVerify) {
  int n = GetParam();
  auto leaves = MakeLeaves(n);
  MerkleTree tree(leaves);
  EXPECT_EQ(tree.root(), MerkleTree::ComputeRoot(leaves));
  for (int i = 0; i < n; i++) {
    MerkleProof proof;
    ASSERT_TRUE(tree.ProveLeaf(i, &proof).ok());
    EXPECT_EQ(MerkleTree::RootFromProof(leaves[i], proof), tree.root())
        << "leaf " << i << " of " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleProofTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17,
                                           33, 100));

TEST(MerkleTreeTest, TamperedLeafFailsProof) {
  auto leaves = MakeLeaves(8);
  MerkleTree tree(leaves);
  MerkleProof proof;
  ASSERT_TRUE(tree.ProveLeaf(3, &proof).ok());
  Hash256 tampered = Sha256::Digest(Slice("evil"));
  EXPECT_NE(MerkleTree::RootFromProof(tampered, proof), tree.root());
}

TEST(MerkleTreeTest, ProofIndexOutOfRange) {
  MerkleTree tree(MakeLeaves(4));
  MerkleProof proof;
  EXPECT_TRUE(tree.ProveLeaf(4, &proof).IsInvalidArgument());
}

Block MakeBlock(BlockId height, Hash256 prev, TransactionId first_tid,
                int num_txns, Timestamp ts = 1000) {
  BlockBuilder builder;
  builder.SetHeight(height).SetPrevHash(prev).SetTimestamp(ts).SetFirstTid(
      first_tid);
  for (int i = 0; i < num_txns; i++) {
    builder.AddTransaction(
        MakeTxn(i % 2 == 0 ? "donate" : "transfer", "org" + std::to_string(i),
                ts + i, {Value::Int(i), Value::Str("v" + std::to_string(i))}));
  }
  return std::move(builder).Build("packager-sig");
}

TEST(BlockTest, BuilderAssignsConsecutiveTids) {
  Block block = MakeBlock(1, Hash256{}, 10, 5);
  ASSERT_EQ(block.transactions().size(), 5u);
  for (int i = 0; i < 5; i++) {
    EXPECT_EQ(block.transactions()[i].tid(), 10u + i);
  }
  EXPECT_EQ(block.header().first_tid, 10u);
  EXPECT_EQ(block.header().num_transactions, 5u);
}

TEST(BlockTest, ValidatePassesAndDetectsTampering) {
  Block block = MakeBlock(1, Hash256{}, 1, 4);
  EXPECT_TRUE(block.Validate().ok());
  // Tamper with the header root.
  Block bad = block;
  bad.mutable_header()->trans_root = Hash256{};
  EXPECT_TRUE(bad.Validate().IsCorruption());
}

TEST(BlockTest, EncodeDecodeRoundTrip) {
  Block block = MakeBlock(3, Sha256::Digest(Slice("prev")), 100, 7);
  std::string buf;
  block.EncodeTo(&buf);
  Slice input(buf);
  Block decoded;
  ASSERT_TRUE(Block::DecodeFrom(&input, &decoded).ok());
  EXPECT_EQ(decoded.header(), block.header());
  ASSERT_EQ(decoded.transactions().size(), block.transactions().size());
  for (size_t i = 0; i < block.transactions().size(); i++) {
    EXPECT_EQ(decoded.transactions()[i], block.transactions()[i]);
  }
  EXPECT_TRUE(decoded.Validate().ok());
}

TEST(BlockTest, DecodeOneTransaction) {
  Block block = MakeBlock(2, Hash256{}, 50, 9);
  std::string buf;
  block.EncodeTo(&buf);
  for (uint32_t i = 0; i < 9; i++) {
    Transaction txn;
    ASSERT_TRUE(Block::DecodeOneTransaction(buf, i, &txn).ok());
    EXPECT_EQ(txn, block.transactions()[i]);
  }
  Transaction txn;
  EXPECT_FALSE(Block::DecodeOneTransaction(buf, 9, &txn).ok());
}

TEST(BlockTest, DecodeHeaderOnly) {
  Block block = MakeBlock(5, Hash256{}, 1, 3);
  std::string buf;
  block.EncodeTo(&buf);
  BlockHeader header;
  ASSERT_TRUE(Block::DecodeHeader(buf, &header).ok());
  EXPECT_EQ(header, block.header());
}

TEST(BlockStoreTest, AppendAndReadBack) {
  ScratchDir dir("store_basic");
  BlockStore store;
  ASSERT_TRUE(store.Open(BlockStoreOptions(), dir.path()).ok());
  Hash256 prev{};
  for (int h = 0; h < 10; h++) {
    Block block = MakeBlock(h, prev, h * 5 + 1, 5);
    prev = block.header().block_hash;
    ASSERT_TRUE(store.Append(block).ok());
  }
  EXPECT_EQ(store.num_blocks(), 10u);
  for (int h = 0; h < 10; h++) {
    std::shared_ptr<const Block> block;
    ASSERT_TRUE(store.ReadBlock(h, &block).ok());
    EXPECT_EQ(block->height(), static_cast<BlockId>(h));
    EXPECT_TRUE(block->Validate().ok());
  }
  std::shared_ptr<const Block> missing;
  EXPECT_TRUE(store.ReadBlock(10, &missing).IsNotFound());
  store.Close();
}

TEST(BlockStoreTest, RejectsNonConsecutiveHeights) {
  ScratchDir dir("store_heights");
  BlockStore store;
  ASSERT_TRUE(store.Open(BlockStoreOptions(), dir.path()).ok());
  ASSERT_TRUE(store.Append(MakeBlock(0, Hash256{}, 1, 1)).ok());
  EXPECT_TRUE(store.Append(MakeBlock(2, Hash256{}, 1, 1)).IsInvalidArgument());
  EXPECT_TRUE(store.Append(MakeBlock(0, Hash256{}, 1, 1)).IsInvalidArgument());
}

TEST(BlockStoreTest, ReadHeaderAndTransaction) {
  ScratchDir dir("store_partial");
  BlockStore store;
  ASSERT_TRUE(store.Open(BlockStoreOptions(), dir.path()).ok());
  Block block = MakeBlock(0, Hash256{}, 1, 6);
  ASSERT_TRUE(store.Append(block).ok());

  BlockHeader header;
  ASSERT_TRUE(store.ReadHeader(0, &header).ok());
  EXPECT_EQ(header, block.header());

  for (uint32_t i = 0; i < 6; i++) {
    std::shared_ptr<const Transaction> txn;
    ASSERT_TRUE(store.ReadTransaction(0, i, &txn).ok());
    EXPECT_EQ(*txn, block.transactions()[i]);
  }
  std::shared_ptr<const Transaction> txn;
  EXPECT_FALSE(store.ReadTransaction(0, 6, &txn).ok());
  EXPECT_GT(store.stats().transactions_read.load(), 0u);
}

TEST(BlockStoreTest, RecoversAfterReopen) {
  ScratchDir dir("store_recover");
  Hash256 prev{};
  {
    BlockStore store;
    ASSERT_TRUE(store.Open(BlockStoreOptions(), dir.path()).ok());
    for (int h = 0; h < 7; h++) {
      Block block = MakeBlock(h, prev, h * 3 + 1, 3);
      prev = block.header().block_hash;
      ASSERT_TRUE(store.Append(block).ok());
    }
    store.Close();
  }
  BlockStore store;
  ASSERT_TRUE(store.Open(BlockStoreOptions(), dir.path()).ok());
  EXPECT_EQ(store.num_blocks(), 7u);
  std::shared_ptr<const Block> block;
  ASSERT_TRUE(store.ReadBlock(6, &block).ok());
  EXPECT_TRUE(block->Validate().ok());
  // And appending continues where it left off.
  ASSERT_TRUE(store.Append(MakeBlock(7, prev, 22, 2)).ok());
  EXPECT_EQ(store.num_blocks(), 8u);
}

TEST(BlockStoreTest, SegmentRollAtSizeLimit) {
  ScratchDir dir("store_segments");
  BlockStoreOptions options;
  options.segment_size = 4096;  // tiny segments force rolling
  BlockStore store;
  ASSERT_TRUE(store.Open(options, dir.path()).ok());
  for (int h = 0; h < 30; h++) {
    ASSERT_TRUE(store.Append(MakeBlock(h, Hash256{}, h * 4 + 1, 4)).ok());
  }
  std::vector<std::string> files;
  ASSERT_TRUE(ListDir(dir.path(), &files).ok());
  EXPECT_GT(files.size(), 1u) << "expected multiple segments";
  // Everything still readable, including after reopen.
  store.Close();
  BlockStore reopened;
  ASSERT_TRUE(reopened.Open(options, dir.path()).ok());
  EXPECT_EQ(reopened.num_blocks(), 30u);
  for (int h = 0; h < 30; h++) {
    std::shared_ptr<const Block> block;
    ASSERT_TRUE(reopened.ReadBlock(h, &block).ok()) << h;
    EXPECT_EQ(block->height(), static_cast<BlockId>(h));
  }
}

TEST(BlockStoreTest, BlockCacheServesRepeatReads) {
  ScratchDir dir("store_cache");
  BlockStoreOptions options;
  options.block_cache_bytes = 10 << 20;
  BlockStore store;
  ASSERT_TRUE(store.Open(options, dir.path()).ok());
  ASSERT_TRUE(store.Append(MakeBlock(0, Hash256{}, 1, 5)).ok());

  std::shared_ptr<const Block> block;
  ASSERT_TRUE(store.ReadBlock(0, &block).ok());
  uint64_t disk_reads = store.stats().blocks_read.load();
  ASSERT_TRUE(store.ReadBlock(0, &block).ok());
  EXPECT_EQ(store.stats().blocks_read.load(), disk_reads);  // cache hit
  EXPECT_GT(store.stats().cache_hits.load(), 0u);
}

TEST(BlockStoreTest, TransactionCacheServesRepeatReads) {
  ScratchDir dir("store_txn_cache");
  BlockStoreOptions options;
  options.transaction_cache_bytes = 10 << 20;
  BlockStore store;
  ASSERT_TRUE(store.Open(options, dir.path()).ok());
  ASSERT_TRUE(store.Append(MakeBlock(0, Hash256{}, 1, 5)).ok());

  std::shared_ptr<const Transaction> txn;
  ASSERT_TRUE(store.ReadTransaction(0, 2, &txn).ok());
  uint64_t disk_reads = store.stats().transactions_read.load();
  ASSERT_TRUE(store.ReadTransaction(0, 2, &txn).ok());
  EXPECT_EQ(store.stats().transactions_read.load(), disk_reads);
  EXPECT_GT(store.stats().cache_hits.load(), 0u);
}

// The read path CRC-checks every record: corrupt a payload byte while the
// store is open (so the startup scan has already indexed the record) and the
// next ReadBlock must report Corruption rather than decode garbage.
TEST(BlockStoreTest, DetectsCorruptedRecordOnRead) {
  ScratchDir dir("store_corrupt");
  BlockStore store;
  ASSERT_TRUE(store.Open(BlockStoreOptions(), dir.path()).ok());
  ASSERT_TRUE(store.Append(MakeBlock(0, Hash256{}, 1, 3)).ok());

  // Flip a byte in the middle of the payload, behind the store's back.
  std::vector<std::string> files;
  ASSERT_TRUE(ListDir(dir.path(), &files).ok());
  ASSERT_EQ(files.size(), 1u);
  std::string path = dir.path() + "/" + files[0];
  FILE* f = fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  fseek(f, 100, SEEK_SET);
  int c = fgetc(f);
  fseek(f, 100, SEEK_SET);
  fputc(c ^ 0xff, f);
  fclose(f);

  std::shared_ptr<const Block> block;
  EXPECT_TRUE(store.ReadBlock(0, &block).IsCorruption());
}

// Reopening over that same corruption self-heals instead: the defective
// record sits in the tail segment, so recovery truncates it away and the
// store comes back empty but writable.
TEST(BlockStoreTest, ReopenTruncatesCorruptedTailRecord) {
  ScratchDir dir("store_corrupt_reopen");
  {
    BlockStore store;
    ASSERT_TRUE(store.Open(BlockStoreOptions(), dir.path()).ok());
    ASSERT_TRUE(store.Append(MakeBlock(0, Hash256{}, 1, 3)).ok());
    store.Close();
  }
  std::vector<std::string> files;
  ASSERT_TRUE(ListDir(dir.path(), &files).ok());
  ASSERT_EQ(files.size(), 1u);
  std::string path = dir.path() + "/" + files[0];
  FILE* f = fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  fseek(f, 100, SEEK_SET);
  int c = fgetc(f);
  fseek(f, 100, SEEK_SET);
  fputc(c ^ 0xff, f);
  fclose(f);

  BlockStore store;
  ASSERT_TRUE(store.Open(BlockStoreOptions(), dir.path()).ok());
  EXPECT_EQ(store.num_blocks(), 0u);
  EXPECT_TRUE(store.recovery_stats().tail_truncated);
  EXPECT_EQ(store.recovery_stats().records_dropped, 1u);
  EXPECT_GT(store.recovery_stats().bytes_truncated, 0u);

  // The store stays usable: fresh appends land where the garbage was.
  ASSERT_TRUE(store.Append(MakeBlock(0, Hash256{}, 1, 2)).ok());
  std::shared_ptr<const Block> block;
  ASSERT_TRUE(store.ReadBlock(0, &block).ok());
  EXPECT_EQ(block->transactions().size(), 2u);
}

TEST(BlockStoreTest, RawRecordMatchesEncoding) {
  ScratchDir dir("store_raw");
  BlockStore store;
  ASSERT_TRUE(store.Open(BlockStoreOptions(), dir.path()).ok());
  Block block = MakeBlock(0, Hash256{}, 1, 2);
  ASSERT_TRUE(store.Append(block).ok());
  std::string record;
  ASSERT_TRUE(store.ReadRawRecord(0, &record).ok());
  std::string expected;
  block.EncodeTo(&expected);
  EXPECT_EQ(record, expected);
}

}  // namespace
}  // namespace sebdb
