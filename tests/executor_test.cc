// End-to-end query-processing tests: a chain is built directly (no
// consensus), indexed, and queried through SQL with every access path /
// join strategy; paths must agree with each other and with ground truth.
#include <gtest/gtest.h>

#include <algorithm>

#include "offchain/offchain_db.h"
#include "sql/executor.h"
#include "tests/test_util.h"

namespace sebdb {
namespace {

using testing_util::MakeTxn;
using testing_util::TestChain;

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    chain_ = std::make_unique<TestChain>("executor");

    // Register schemas via schema transactions in block 1.
    Schema donate, transfer, distribute;
    ASSERT_TRUE(Schema::Create("donate",
                               {{"donor", ValueType::kString},
                                {"project", ValueType::kString},
                                {"amount", ValueType::kInt64}},
                               &donate)
                    .ok());
    ASSERT_TRUE(Schema::Create("transfer",
                               {{"project", ValueType::kString},
                                {"organization", ValueType::kString},
                                {"amount", ValueType::kInt64}},
                               &transfer)
                    .ok());
    ASSERT_TRUE(Schema::Create("distribute",
                               {{"organization", ValueType::kString},
                                {"donee", ValueType::kString},
                                {"amount", ValueType::kInt64}},
                               &distribute)
                    .ok());
    std::vector<Transaction> schema_txns;
    for (const Schema* schema : {&donate, &transfer, &distribute}) {
      Transaction txn = Catalog::MakeSchemaTransaction(*schema);
      txn.set_sender("admin");
      txn.set_ts(NextTs());
      schema_txns.push_back(std::move(txn));
    }
    ASSERT_TRUE(chain_->AppendBlock(std::move(schema_txns)).ok());

    // 10 data blocks. donate rows: donor d<i%5>, amount = i (0..99);
    // transfer rows in even blocks by org1; distribute rows in odd blocks.
    int amount = 0;
    for (int b = 0; b < 10; b++) {
      std::vector<Transaction> txns;
      for (int i = 0; i < 10; i++, amount++) {
        txns.push_back(MakeTxn("donate", "donor" + std::to_string(amount % 5),
                               NextTs(),
                               {Value::Str("d" + std::to_string(amount % 5)),
                                Value::Str("proj"), Value::Int(amount)}));
      }
      if (b % 2 == 0) {
        txns.push_back(MakeTxn(
            "transfer", "org1", NextTs(),
            {Value::Str("proj"), Value::Str("school" + std::to_string(b % 3)),
             Value::Int(b * 10)}));
      } else {
        txns.push_back(MakeTxn(
            "distribute", "org2", NextTs(),
            {Value::Str("school" + std::to_string(b % 3)),
             Value::Str("donee" + std::to_string(b)), Value::Int(b)}));
      }
      ASSERT_TRUE(chain_->AppendBlock(std::move(txns)).ok());
    }

    // Off-chain site data.
    ASSERT_TRUE(offchain_
                    .CreateTable("doneeinfo", {{"donee", ValueType::kString},
                                               {"age", ValueType::kInt64}})
                    .ok());
    for (int b = 1; b < 10; b += 2) {
      ASSERT_TRUE(offchain_
                      .Insert("doneeinfo",
                              {Value::Str("donee" + std::to_string(b)),
                               Value::Int(10 + b)})
                      .ok());
    }
    connector_ = std::make_unique<LocalOffchainConnector>(&offchain_);
    executor_ = std::make_unique<Executor>(chain_->store(), chain_->indexes(),
                                           chain_->catalog(),
                                           connector_.get());
  }

  Timestamp NextTs() { return ts_ += 10; }

  ResultSet Run(const std::string& sql, ExecOptions options = {}) {
    ResultSet result;
    Status s = executor_->ExecuteSql(sql, options, &result);
    EXPECT_TRUE(s.ok()) << sql << " -> " << s.ToString();
    return result;
  }

  // Sorted multiset of row renderings, for path-agreement comparisons.
  static std::vector<std::string> Rendered(const ResultSet& result) {
    std::vector<std::string> out;
    for (const auto& row : result.rows) {
      std::string line;
      for (const auto& v : row) line += v.ToString() + "|";
      out.push_back(std::move(line));
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  Timestamp ts_ = 0;
  std::unique_ptr<TestChain> chain_;
  OffchainDb offchain_;
  std::unique_ptr<LocalOffchainConnector> connector_;
  std::unique_ptr<Executor> executor_;
};

TEST_F(ExecutorTest, SchemaTransactionsPopulateCatalog) {
  EXPECT_TRUE(chain_->catalog()->HasTable("donate"));
  EXPECT_TRUE(chain_->catalog()->HasTable("transfer"));
  EXPECT_TRUE(chain_->catalog()->HasTable("distribute"));
  EXPECT_EQ(chain_->chain().height(), 12u);  // genesis + schema + 10 data
}

TEST_F(ExecutorTest, RangeQueryAllPathsAgree) {
  Run("CREATE INDEX ON donate(amount)");
  const std::string q =
      "SELECT * FROM donate WHERE amount BETWEEN 25 AND 44";
  ExecOptions scan, bitmap, layered;
  scan.access_path = AccessPath::kScan;
  bitmap.access_path = AccessPath::kBitmap;
  layered.access_path = AccessPath::kLayered;
  ResultSet rs_scan = Run(q, scan);
  ResultSet rs_bitmap = Run(q, bitmap);
  ResultSet rs_layered = Run(q, layered);
  EXPECT_EQ(rs_scan.num_rows(), 20u);
  EXPECT_EQ(Rendered(rs_scan), Rendered(rs_bitmap));
  EXPECT_EQ(Rendered(rs_scan), Rendered(rs_layered));
}

TEST_F(ExecutorTest, AutoPathPicksLayeredWhenIndexed) {
  Run("CREATE INDEX ON donate(amount)");
  ResultSet rs = Run("EXPLAIN SELECT * FROM donate WHERE amount BETWEEN 1 AND 2");
  EXPECT_NE(rs.plan.find("layered(amount"), std::string::npos) << rs.plan;
  ResultSet no_pred = Run("EXPLAIN SELECT * FROM transfer");
  EXPECT_NE(no_pred.plan.find("bitmap"), std::string::npos) << no_pred.plan;
}

TEST_F(ExecutorTest, ParametersBind) {
  ExecOptions options;
  options.params = {Value::Int(10), Value::Int(12)};
  ResultSet rs = Run("SELECT * FROM donate WHERE amount BETWEEN ? AND ?",
                     options);
  EXPECT_EQ(rs.num_rows(), 3u);
}

TEST_F(ExecutorTest, ProjectionAndColumnNames) {
  ResultSet rs = Run("SELECT donor, amount FROM donate WHERE amount = 7");
  ASSERT_EQ(rs.columns.size(), 2u);
  EXPECT_EQ(rs.columns[0], "donate.donor");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsString(), "d2");
  EXPECT_EQ(rs.rows[0][1].AsInt(), 7);
}

TEST_F(ExecutorTest, SelectExposesSystemColumns) {
  ResultSet rs = Run("SELECT tid, senid, tname FROM donate WHERE amount = 0");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_GT(rs.rows[0][0].AsInt(), 0);
  EXPECT_EQ(rs.rows[0][1].AsString(), "donor0");
  EXPECT_EQ(rs.rows[0][2].AsString(), "donate");
}

TEST_F(ExecutorTest, WindowRestrictsBlocks) {
  // The first data block's txns have ts <= 140 (block ts = max of them).
  ResultSet all = Run("SELECT * FROM donate");
  ResultSet windowed = Run("SELECT * FROM donate WINDOW [0, 150]");
  EXPECT_EQ(all.num_rows(), 100u);
  EXPECT_LT(windowed.num_rows(), all.num_rows());
  EXPECT_GT(windowed.num_rows(), 0u);
}

TEST_F(ExecutorTest, TraceOneDimensionAllPathsAgree) {
  const std::string q = "TRACE OPERATOR = 'org1'";
  ExecOptions scan, bitmap, layered;
  scan.access_path = AccessPath::kScan;
  bitmap.access_path = AccessPath::kBitmap;
  layered.access_path = AccessPath::kLayered;
  ResultSet rs_scan = Run(q, scan);
  ResultSet rs_bitmap = Run(q, bitmap);
  ResultSet rs_layered = Run(q, layered);
  EXPECT_EQ(rs_scan.num_rows(), 5u);  // transfer txns in 5 even blocks
  EXPECT_EQ(Rendered(rs_scan), Rendered(rs_bitmap));
  EXPECT_EQ(Rendered(rs_scan), Rendered(rs_layered));
}

TEST_F(ExecutorTest, TraceTwoDimensions) {
  ResultSet rs = Run("TRACE OPERATOR = 'org1', OPERATION = 'transfer'");
  EXPECT_EQ(rs.num_rows(), 5u);
  ResultSet none = Run("TRACE OPERATOR = 'org1', OPERATION = 'distribute'");
  EXPECT_EQ(none.num_rows(), 0u);
  ResultSet by_op = Run("TRACE OPERATION = 'distribute'");
  EXPECT_EQ(by_op.num_rows(), 5u);
}

TEST_F(ExecutorTest, TraceWithWindow) {
  ResultSet all = Run("TRACE OPERATOR = 'org1'");
  ASSERT_EQ(all.num_rows(), 5u);
  // Window covering roughly the first half of the chain.
  ResultSet windowed = Run("TRACE [0, 600] OPERATOR = 'org1'");
  EXPECT_LT(windowed.num_rows(), all.num_rows());
}

TEST_F(ExecutorTest, GetBlockByIdTidTs) {
  ResultSet by_id = Run("GET BLOCK ID=3");
  ASSERT_EQ(by_id.num_rows(), 1u);
  EXPECT_EQ(by_id.rows[0][0].AsInt(), 3);

  int64_t first_tid = by_id.rows[0][1].AsInt();
  ResultSet by_tid = Run("GET BLOCK TID=" + std::to_string(first_tid + 2));
  ASSERT_EQ(by_tid.num_rows(), 1u);
  EXPECT_EQ(by_tid.rows[0][0].AsInt(), 3);

  int64_t block_ts = by_id.rows[0][3].AsTimestamp();
  ResultSet by_ts = Run("GET BLOCK TS=" + std::to_string(block_ts));
  ASSERT_EQ(by_ts.num_rows(), 1u);
  EXPECT_EQ(by_ts.rows[0][0].AsInt(), 3);

  ResultSet result;
  EXPECT_TRUE(executor_->ExecuteSql("GET BLOCK ID=999", {}, &result)
                  .IsNotFound());
}

TEST_F(ExecutorTest, OnChainJoinStrategiesAgree) {
  const std::string q =
      "SELECT * FROM transfer, distribute ON transfer.organization = "
      "distribute.organization";
  ExecOptions scan, bitmap;
  scan.join_strategy = JoinStrategy::kScanHash;
  bitmap.join_strategy = JoinStrategy::kBitmapHash;
  ResultSet rs_scan = Run(q, scan);
  ResultSet rs_bitmap = Run(q, bitmap);
  EXPECT_GT(rs_scan.num_rows(), 0u);
  EXPECT_EQ(Rendered(rs_scan), Rendered(rs_bitmap));

  // With indices on both join columns the merge strategy agrees too.
  Run("CREATE INDEX ON transfer(organization)");
  Run("CREATE INDEX ON distribute(organization)");
  ExecOptions merge;
  merge.join_strategy = JoinStrategy::kLayeredMerge;
  ResultSet rs_merge = Run(q, merge);
  EXPECT_EQ(Rendered(rs_scan), Rendered(rs_merge));

  // Auto now picks layered-merge.
  ResultSet plan = Run("EXPLAIN " + q);
  EXPECT_NE(plan.plan.find("layered-merge"), std::string::npos) << plan.plan;
}

TEST_F(ExecutorTest, OnChainJoinGroundTruth) {
  // transfer orgs: school0 (b=0,6), school2 (b=2,8), school1 (b=4);
  // distribute orgs: school1 (b=1,7), school0 (b=3,9), school2 (b=5).
  // Matches: school0 2x2=4, school1 1x2=2, school2 2x1=2 -> 8 rows.
  ExecOptions options;
  options.join_strategy = JoinStrategy::kScanHash;
  ResultSet rs = Run(
      "SELECT * FROM transfer, distribute ON transfer.organization = "
      "distribute.organization",
      options);
  EXPECT_EQ(rs.num_rows(), 8u);
}

TEST_F(ExecutorTest, OnOffJoinStrategiesAgree) {
  const std::string q =
      "SELECT * FROM onchain.distribute, offchain.doneeinfo ON "
      "distribute.donee = doneeinfo.donee";
  ExecOptions scan, bitmap;
  scan.join_strategy = JoinStrategy::kScanHash;
  bitmap.join_strategy = JoinStrategy::kBitmapHash;
  ResultSet rs_scan = Run(q, scan);
  ResultSet rs_bitmap = Run(q, bitmap);
  EXPECT_EQ(rs_scan.num_rows(), 5u);  // donee1,3,5,7,9 all have info
  EXPECT_EQ(Rendered(rs_scan), Rendered(rs_bitmap));

  Run("CREATE INDEX ON distribute(donee)");
  ExecOptions merge;
  merge.join_strategy = JoinStrategy::kLayeredMerge;
  ResultSet rs_merge = Run(q, merge);
  EXPECT_EQ(Rendered(rs_scan), Rendered(rs_merge));
}

TEST_F(ExecutorTest, OnOffJoinTableOrderIrrelevant) {
  ExecOptions options;
  options.join_strategy = JoinStrategy::kBitmapHash;
  ResultSet rs = Run(
      "SELECT * FROM offchain.doneeinfo, onchain.distribute ON "
      "doneeinfo.donee = distribute.donee",
      options);
  EXPECT_EQ(rs.num_rows(), 5u);
  // Off-chain columns come first in the declared order.
  EXPECT_EQ(rs.columns[0], "doneeinfo.donee");
}

TEST_F(ExecutorTest, OffchainOnlySelect) {
  ResultSet rs = Run("SELECT * FROM offchain.doneeinfo WHERE age > 14");
  EXPECT_EQ(rs.num_rows(), 3u);  // ages 16, 18, 20 (donee5,7,9... 11..19)
}

TEST_F(ExecutorTest, JoinWithResidualFilter) {
  ExecOptions options;
  options.join_strategy = JoinStrategy::kBitmapHash;
  ResultSet rs = Run(
      "SELECT * FROM onchain.distribute, offchain.doneeinfo ON "
      "distribute.donee = doneeinfo.donee WHERE age > 14",
      options);
  EXPECT_EQ(rs.num_rows(), 3u);
}

TEST_F(ExecutorTest, ErrorCases) {
  ResultSet rs;
  EXPECT_TRUE(
      executor_->ExecuteSql("SELECT * FROM nope", {}, &rs).IsNotFound());
  ExecOptions layered;
  layered.access_path = AccessPath::kLayered;
  EXPECT_TRUE(executor_
                  ->ExecuteSql("SELECT * FROM transfer WHERE amount = 1",
                               layered, &rs)
                  .IsInvalidArgument());  // no index on transfer.amount yet
  EXPECT_TRUE(executor_->ExecuteSql("INSERT INTO donate VALUES (1,2,3)", {},
                                    &rs)
                  .IsNotSupported());  // writes go through the node
  EXPECT_TRUE(executor_
                  ->ExecuteSql("CREATE INDEX ON donate(nope)", {}, &rs)
                  .IsNotFound());
  EXPECT_TRUE(executor_
                  ->ExecuteSql(
                      "SELECT * FROM offchain.a, offchain.b ON a.x = b.x", {},
                      &rs)
                  .IsNotSupported());
}

TEST_F(ExecutorTest, CreateIndexTwiceFails) {
  Run("CREATE INDEX ON donate(amount)");
  ResultSet rs;
  EXPECT_TRUE(executor_->ExecuteSql("CREATE INDEX ON donate(amount)", {}, &rs)
                  .IsInvalidArgument());
}

TEST_F(ExecutorTest, DiscreteIndexOnStringColumn) {
  Run("CREATE INDEX ON donate(donor)");  // string -> discrete automatically
  ExecOptions layered;
  layered.access_path = AccessPath::kLayered;
  ResultSet rs = Run("SELECT * FROM donate WHERE donor = 'd3'", layered);
  EXPECT_EQ(rs.num_rows(), 20u);
  ResultSet plan =
      Run("EXPLAIN SELECT * FROM donate WHERE donor = 'd3'", layered);
  EXPECT_NE(plan.plan.find("layered(donor"), std::string::npos);
}

}  // namespace
}  // namespace sebdb
