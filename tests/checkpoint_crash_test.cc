// Crash-point fault injection for the checkpoint protocol (DESIGN.md §11):
// a simulated kill at EVERY write boundary of a checkpoint build — page
// files, chain-meta blob, manifest append (the atomic swap) — must leave a
// directory that reopens to exactly the acked chain: recovery restores the
// newest fully published checkpoint (or falls back to the previous one, or
// to a full replay) and replays the tail, with zero acked-transaction loss
// and every index answering identically to a never-crashed reference chain.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/env.h"
#include "common/fault_env.h"
#include "core/chain_manager.h"
#include "tests/test_util.h"

namespace sebdb {
namespace {

using testing_util::MakeTxn;
using testing_util::ScratchDir;

constexpr uint64_t kFirstBatch = 8;   // blocks before checkpoint 1
constexpr uint64_t kSecondBatch = 4;  // blocks between checkpoints 1 and 2
// Heights (genesis included) the two checkpoints cover.
constexpr uint64_t kCkpt1Height = 1 + kFirstBatch;
constexpr uint64_t kCkpt2Height = kCkpt1Height + kSecondBatch;

ChainOptions CrashChainOptions(Env* env) {
  ChainOptions options;
  options.verify_signatures = false;
  options.store.env = env;
  options.indexes.env = env;
  // Checkpoints are driven manually; Close must not write another.
  options.checkpoint.interval_blocks = 0;
  options.checkpoint.checkpoint_on_close = false;
  return options;
}

// Deterministic batch for consensus seq `seq` (block height seq + 1): two
// transactions from rotating senders over two tables.
std::vector<Transaction> BatchFor(uint64_t seq) {
  Timestamp ts = 1000 + static_cast<Timestamp>(seq);
  return {
      MakeTxn("t", "org" + std::to_string(seq % 3), ts,
              {Value::Int(static_cast<int64_t>(seq)), Value::Str("a")}),
      MakeTxn("u", "org" + std::to_string((seq + 1) % 3), ts,
              {Value::Int(-static_cast<int64_t>(seq)), Value::Str("b")}),
  };
}

Status AppendSeq(ChainManager* chain, uint64_t seq) {
  return chain->AppendBatch(seq, BatchFor(seq), 1000 + seq, "sig");
}

// One comparable answer sheet for the chain prefix [0, height): every block
// index entry, per-block SenID search results, and the SenID ALI digest.
std::string QueryFingerprint(ChainManager* chain, uint64_t height) {
  std::string fp;
  for (uint64_t h = 0; h < height; h++) {
    BlockIndexEntry e;
    Status s = chain->indexes()->block_index().FindByBlockId(h, &e);
    EXPECT_TRUE(s.ok()) << "height " << h << ": " << s.ToString();
    fp += std::to_string(e.bid) + "/" + std::to_string(e.first_tid) + "/" +
          std::to_string(e.num_transactions) + "/" + std::to_string(e.ts) +
          ";";
  }
  for (int org = 0; org < 3; org++) {
    Value key = Value::Str("org" + std::to_string(org));
    for (uint64_t h = 0; h < height; h++) {
      std::vector<TxnPointer> ptrs;
      Status s =
          chain->indexes()->senid_index()->SearchBlock(h, &key, &key, &ptrs);
      EXPECT_TRUE(s.ok()) << "block " << h << ": " << s.ToString();
      for (const auto& p : ptrs) fp += p.ToString();
    }
    fp += "|";
  }
  Hash256 digest{};
  Status s = chain->indexes()->senid_ali()->ComputeDigest(
      nullptr, nullptr, nullptr, height, &digest);
  EXPECT_TRUE(s.ok()) << s.ToString();
  fp.append(reinterpret_cast<const char*>(digest.bytes.data()), 32);
  return fp;
}

TEST(CheckpointCrashTest, RecoversFromEveryCheckpointWritePoint) {
  // Reference chain: same workload, no checkpoints, never crashed.
  ScratchDir ref_dir("ckpt_crash_ref");
  ChainManager reference("ref", nullptr);
  ASSERT_TRUE(
      reference.Open(CrashChainOptions(nullptr), ref_dir.path()).ok());
  for (uint64_t seq = 0; seq < kFirstBatch + kSecondBatch; seq++) {
    ASSERT_TRUE(AppendSeq(&reference, seq).ok());
  }
  ASSERT_EQ(reference.height(), kCkpt2Height);

  // Clean instrumented run: count the write ops spanning checkpoint 1, the
  // second batch of appends, and checkpoint 2. Crash points sweep this
  // whole window, so kills land inside page-file writes, the meta blob,
  // and both manifest appends.
  uint64_t window_writes;
  {
    ScratchDir dir("ckpt_crash_clean");
    FaultInjectionEnv env(Env::Default());
    ChainManager chain("node", nullptr);
    ASSERT_TRUE(chain.Open(CrashChainOptions(&env), dir.path()).ok());
    for (uint64_t seq = 0; seq < kFirstBatch; seq++) {
      ASSERT_TRUE(AppendSeq(&chain, seq).ok());
    }
    const uint64_t before = env.stats().write_ops;
    ASSERT_TRUE(chain.WriteCheckpoint().ok());
    for (uint64_t seq = kFirstBatch; seq < kFirstBatch + kSecondBatch; seq++) {
      ASSERT_TRUE(AppendSeq(&chain, seq).ok());
    }
    ASSERT_TRUE(chain.WriteCheckpoint().ok());
    ASSERT_EQ(chain.checkpoints_written(), 2u);
    window_writes = env.stats().write_ops - before;
    chain.Close();

    // Sanity: the clean directory restores from checkpoint 2 with no tail.
    ChainManager reopened("node", nullptr);
    ASSERT_TRUE(
        reopened.Open(CrashChainOptions(nullptr), dir.path()).ok());
    const ChainManager::StartupStats startup = reopened.startup_stats();
    EXPECT_TRUE(startup.from_checkpoint);
    EXPECT_EQ(startup.checkpoint_height, kCkpt2Height);
    EXPECT_EQ(startup.replayed_blocks, 0u);
    EXPECT_EQ(QueryFingerprint(&reopened, kCkpt2Height),
              QueryFingerprint(&reference, kCkpt2Height));
    reopened.Close();
  }
  ASSERT_GT(window_writes, 4u);  // several files + two manifest appends

  for (uint64_t crash_at = 1; crash_at <= window_writes; crash_at++) {
    SCOPED_TRACE("crash point " + std::to_string(crash_at));
    ScratchDir dir("ckpt_crash_pt");
    FaultInjectionEnv env(Env::Default());
    uint64_t acked = 0;  // blocks whose append returned OK (genesis incl.)
    {
      ChainManager chain("node", nullptr);
      ASSERT_TRUE(chain.Open(CrashChainOptions(&env), dir.path()).ok());
      for (uint64_t seq = 0; seq < kFirstBatch; seq++) {
        ASSERT_TRUE(AppendSeq(&chain, seq).ok());
      }
      acked = kCkpt1Height;
      // Vary how much of the fatal write survives: nothing, a fragment, or
      // the whole buffer (crash after the write, before the ack).
      static constexpr uint64_t kKeepChoices[] = {0, 1, 97, 1 << 20};
      env.ScheduleCrash(crash_at, kKeepChoices[crash_at % 4]);

      chain.WriteCheckpoint().ok();  // may die anywhere inside
      for (uint64_t seq = kFirstBatch; seq < kFirstBatch + kSecondBatch;
           seq++) {
        if (!AppendSeq(&chain, seq).ok()) break;
        acked++;
      }
      chain.WriteCheckpoint().ok();
      ASSERT_TRUE(env.crashed());
      chain.Close();  // best effort; the env is dead
    }

    // "Restart" against the real file system.
    ChainManager chain("node", nullptr);
    ASSERT_TRUE(chain.Open(CrashChainOptions(nullptr), dir.path()).ok())
        << "reopen failed";
    const uint64_t recovered = chain.height();
    // Zero acked loss; at most the one in-flight torn append can exceed it.
    ASSERT_GE(recovered, acked);
    ASSERT_LE(recovered, acked + 1);

    // Recovery restored a published checkpoint — necessarily one of the two
    // the workload writes — or fell back to a full replay; either way the
    // whole recovered prefix is accounted for.
    const ChainManager::StartupStats startup = chain.startup_stats();
    if (startup.from_checkpoint) {
      EXPECT_TRUE(startup.checkpoint_height == kCkpt1Height ||
                  startup.checkpoint_height == kCkpt2Height)
          << "checkpoint height " << startup.checkpoint_height;
      EXPECT_LE(startup.checkpoint_height, recovered);
      EXPECT_EQ(startup.replayed_blocks,
                recovered - startup.checkpoint_height);
    } else {
      EXPECT_EQ(startup.replayed_blocks, recovered);
    }

    // Every recovered block answers exactly like the reference chain.
    EXPECT_EQ(QueryFingerprint(&chain, recovered),
              QueryFingerprint(&reference, recovered));

    // The chain resumes: the rest of the workload appends and a fresh
    // checkpoint publishes over whatever the crash left behind.
    for (uint64_t seq = recovered - 1;
         seq < kFirstBatch + kSecondBatch; seq++) {
      ASSERT_TRUE(AppendSeq(&chain, seq).ok()) << "seq " << seq;
    }
    ASSERT_EQ(chain.height(), kCkpt2Height);
    EXPECT_TRUE(chain.WriteCheckpoint().ok());
    EXPECT_EQ(QueryFingerprint(&chain, kCkpt2Height),
              QueryFingerprint(&reference, kCkpt2Height));
    chain.Close();
  }
  reference.Close();
}

// A checkpoint attempt that dies must not poison the open chain: appends
// and queries continue against the in-memory state, and the next reopen
// still recovers everything.
TEST(CheckpointCrashTest, FailedCheckpointLeavesChainServing) {
  ScratchDir dir("ckpt_crash_serving");
  FaultInjectionEnv env(Env::Default());
  ChainManager chain("node", nullptr);
  ASSERT_TRUE(chain.Open(CrashChainOptions(&env), dir.path()).ok());
  for (uint64_t seq = 0; seq < kFirstBatch; seq++) {
    ASSERT_TRUE(AppendSeq(&chain, seq).ok());
  }

  env.SetFailWrites(true);
  EXPECT_FALSE(chain.WriteCheckpoint().ok());
  env.SetFailWrites(false);
  EXPECT_EQ(chain.checkpoints_written(), 0u);

  // Queries and a retried checkpoint work after the transient failure.
  BlockIndexEntry e;
  ASSERT_TRUE(chain.indexes()->block_index().FindByBlockId(3, &e).ok());
  EXPECT_EQ(e.bid, 3u);
  ASSERT_TRUE(AppendSeq(&chain, kFirstBatch).ok());
  EXPECT_TRUE(chain.WriteCheckpoint().ok());
  EXPECT_EQ(chain.checkpoints_written(), 1u);
  chain.Close();

  ChainManager reopened("node", nullptr);
  ASSERT_TRUE(reopened.Open(CrashChainOptions(nullptr), dir.path()).ok());
  EXPECT_EQ(reopened.height(), kCkpt1Height + 1);
  EXPECT_TRUE(reopened.startup_stats().from_checkpoint);
  reopened.Close();
}

}  // namespace
}  // namespace sebdb
