// Equivalence of the three ways index state can exist (DESIGN.md §11):
// built in memory by sequential AddBlock, restored from a checkpoint plus
// tail-only replay, and restored through a starved buffer pool where every
// query evicts and refaults pages. Randomized chains (fixed seeds) must
// yield byte-identical query results — block index lookups, layered-index
// candidate bitmaps and per-block searches, user-index range results — and
// identical ALI digests and encoded range proofs across all of them, plus a
// rebuild-from-scratch opened on the same directory with its checkpoints
// removed.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "common/env.h"
#include "core/chain_manager.h"
#include "tests/test_util.h"

namespace sebdb {
namespace {

using testing_util::MakeTxn;
using testing_util::ScratchDir;

struct Workload {
  // One entry per consensus batch: the transactions of that block.
  std::vector<std::vector<Transaction>> batches;
  // The user index is created before the first batch: its equal-depth
  // histogram then bootstraps from the first entry-carrying block, which is
  // deterministic across every recovery path (a mid-chain CREATE INDEX
  // samples history at creation time, which a manifest-driven re-create
  // after full replay cannot reproduce — checkpoints do, via the serialized
  // histogram, but this test also compares against rebuild-from-scratch).
  uint64_t create_index_after = 0;  // batches chained before CREATE INDEX
};

Workload MakeWorkload(uint64_t seed) {
  std::mt19937_64 rng(seed);
  Workload w;
  const uint64_t nblocks = 20 + rng() % 25;
  Timestamp ts = 1000;
  for (uint64_t b = 0; b < nblocks; b++) {
    ts += rng() % 5;  // duplicate timestamps happen
    std::vector<Transaction> txns;
    const uint64_t ntxns = rng() % 5;  // empty blocks happen
    for (uint64_t t = 0; t < ntxns; t++) {
      const bool tab_t = rng() % 3 != 0;
      const std::string sender = "org" + std::to_string(rng() % 4);
      const int64_t v = static_cast<int64_t>(rng() % 1000);
      txns.push_back(tab_t ? MakeTxn("t", sender, ts,
                                     {Value::Int(v), Value::Str("x")})
                           : MakeTxn("u", sender, ts, {Value::Str("y")}));
    }
    w.batches.push_back(std::move(txns));
  }
  return w;
}

// Drives `chain` through the workload: CREATE INDEX on t.v (app column 0)
// at the agreed point, then the remaining blocks.
void RunWorkload(ChainManager* chain, const Workload& w) {
  for (uint64_t seq = 0; seq < w.batches.size(); seq++) {
    if (seq == w.create_index_after) {
      ASSERT_TRUE(chain->indexes()
                      ->CreateLayeredIndex("t", "v",
                                           Schema::kNumSystemColumns,
                                           /*discrete=*/false)
                      .ok());
    }
    std::vector<Transaction> txns = w.batches[seq];
    Timestamp ts = 0;
    for (const auto& txn : txns) ts = std::max(ts, txn.ts());
    ASSERT_TRUE(
        chain->AppendBatch(seq, std::move(txns), ts, "sig").ok());
  }
}

std::string BitmapString(const Bitmap& bm) {
  std::string s = std::to_string(bm.size()) + ":";
  for (size_t bit : bm.SetBits()) s += std::to_string(bit) + ",";
  return s;
}

// Serializes every query surface of the chain into one comparable string.
// `seed` drives the sampled probes; the same seed must be used for every
// configuration under comparison.
std::string Fingerprint(ChainManager* chain, uint64_t seed) {
  std::mt19937_64 rng(seed ^ 0x5eb0d6);
  IndexSet* indexes = chain->indexes();
  const uint64_t height = chain->height();
  std::string fp = "h=" + std::to_string(height) + ";";

  // Block index: every block, sampled tids, timestamps, and windows.
  const BlockIndex& bidx = indexes->block_index();
  TransactionId max_tid = chain->next_tid();
  for (uint64_t h = 0; h < height; h++) {
    BlockIndexEntry e;
    Status s = bidx.FindByBlockId(h, &e);
    EXPECT_TRUE(s.ok()) << "height " << h << ": " << s.ToString();
    fp += std::to_string(e.first_tid) + "/" +
          std::to_string(e.num_transactions) + "/" + std::to_string(e.ts) +
          ";";
  }
  for (int i = 0; i < 30; i++) {
    TransactionId tid = rng() % (max_tid + 2);
    BlockIndexEntry e;
    Status s = bidx.FindByTid(tid, &e);
    fp += s.ok() ? std::to_string(e.bid) : "miss";
    Timestamp ts = 990 + static_cast<Timestamp>(rng() % 150);
    s = bidx.FindFirstAtOrAfter(ts, &e);
    fp += s.ok() ? "@" + std::to_string(e.bid) : "@miss";
    Timestamp lo = 990 + static_cast<Timestamp>(rng() % 150);
    fp += BitmapString(
        bidx.BlocksInWindow(lo, lo + static_cast<Timestamp>(rng() % 40)));
  }

  // System layered indices: candidates + per-block pointers per key.
  for (int org = 0; org < 5; org++) {  // org4 never occurs: empty results
    Value key = Value::Str("org" + std::to_string(org));
    fp += BitmapString(indexes->senid_index()->CandidateBlocks(&key, &key));
    for (uint64_t h = 0; h < height; h++) {
      std::vector<TxnPointer> ptrs;
      EXPECT_TRUE(
          indexes->senid_index()->SearchBlock(h, &key, &key, &ptrs).ok());
      for (const auto& p : ptrs) fp += p.ToString();
    }
  }
  for (const char* name : {"t", "u", "nope"}) {
    Value key = Value::Str(name);
    fp += BitmapString(indexes->tname_index()->CandidateBlocks(&key, &key));
  }

  // User index on t.v: random ranges through candidates + searches.
  LayeredIndex* user = indexes->GetLayered("t", "v");
  EXPECT_NE(user, nullptr);
  if (user != nullptr) {
    fp += BitmapString(user->BlocksWithEntries());
    for (int i = 0; i < 20; i++) {
      int64_t lo = static_cast<int64_t>(rng() % 1100) - 50;
      Value vlo = Value::Int(lo);
      Value vhi = Value::Int(lo + static_cast<int64_t>(rng() % 300));
      Bitmap candidates = user->CandidateBlocks(&vlo, &vhi);
      fp += BitmapString(candidates);
      for (size_t bit : candidates.SetBits()) {
        std::vector<TxnPointer> ptrs;
        EXPECT_TRUE(user->SearchBlock(bit, &vlo, &vhi, &ptrs).ok());
        for (const auto& p : ptrs) fp += p.ToString();
      }
    }
  }

  // Authenticated twins: digests and byte-exact encoded proofs.
  Hash256 digest{};
  EXPECT_TRUE(indexes->senid_ali()
                  ->ComputeDigest(nullptr, nullptr, nullptr, height, &digest)
                  .ok());
  fp.append(reinterpret_cast<const char*>(digest.bytes.data()), 32);
  Value org1 = Value::Str("org1");
  AuthQueryResponse proof;
  EXPECT_TRUE(indexes->senid_ali()
                  ->ProveRange(&org1, &org1, nullptr, height, &proof)
                  .ok());
  std::string enc;
  proof.EncodeTo(&enc);
  fp += enc;

  AuthenticatedLayeredIndex* user_ali = indexes->GetAli("t", "v");
  EXPECT_NE(user_ali, nullptr);
  if (user_ali != nullptr) {
    Value lo = Value::Int(100), hi = Value::Int(700);
    EXPECT_TRUE(
        user_ali->ComputeDigest(&lo, &hi, nullptr, height, &digest).ok());
    fp.append(reinterpret_cast<const char*>(digest.bytes.data()), 32);
    proof = AuthQueryResponse();
    EXPECT_TRUE(user_ali->ProveRange(&lo, &hi, nullptr, height, &proof).ok());
    enc.clear();
    proof.EncodeTo(&enc);
    fp += enc;
  }
  return fp;
}

ChainOptions EquivChainOptions(uint64_t interval, uint64_t pool_bytes,
                               bool on_close) {
  ChainOptions options;
  options.verify_signatures = false;
  options.checkpoint.interval_blocks = interval;
  options.checkpoint.pool_bytes = pool_bytes;
  options.checkpoint.checkpoint_on_close = on_close;
  return options;
}

TEST(CheckpointEquivalenceTest, AllRecoveryPathsAnswerIdentically) {
  for (uint64_t seed : {1u, 7u, 23u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const Workload w = MakeWorkload(seed);

    // Baseline: never checkpointed, fully in-memory, still open.
    ScratchDir mem_dir("equiv_mem_" + std::to_string(seed));
    ChainManager mem("mem", nullptr);
    ASSERT_TRUE(mem.Open(EquivChainOptions(0, 64 << 20, false),
                         mem_dir.path())
                    .ok());
    RunWorkload(&mem, w);
    const std::string expected = Fingerprint(&mem, seed);

    // Checkpointed chain: periodic checkpoints mid-workload mean the live
    // chain is already a hybrid of frozen page files and in-memory tail.
    ScratchDir dir("equiv_ckpt_" + std::to_string(seed));
    {
      ChainManager chain("ckpt", nullptr);
      ASSERT_TRUE(chain.Open(EquivChainOptions(7, 64 << 20, false),
                             dir.path())
                      .ok());
      RunWorkload(&chain, w);
      EXPECT_GT(chain.checkpoints_written(), 0u);
      EXPECT_EQ(Fingerprint(&chain, seed), expected) << "live hybrid chain";
      // Leave a tail above the last checkpoint: no checkpoint on close.
      chain.Close();
    }

    // Checkpoint + tail-only replay.
    {
      ChainManager chain("restore", nullptr);
      ASSERT_TRUE(chain.Open(EquivChainOptions(0, 64 << 20, false),
                             dir.path())
                      .ok());
      const ChainManager::StartupStats startup = chain.startup_stats();
      EXPECT_TRUE(startup.from_checkpoint);
      EXPECT_EQ(startup.checkpoint_height + startup.replayed_blocks,
                chain.height());
      EXPECT_EQ(Fingerprint(&chain, seed), expected)
          << "checkpoint + tail replay";
      chain.Close();
    }

    // Same restore through a 8-page pool: every tree descent refaults.
    {
      ChainManager chain("starved", nullptr);
      ASSERT_TRUE(chain.Open(EquivChainOptions(0, 8 * kPageSize, false),
                             dir.path())
                      .ok());
      EXPECT_TRUE(chain.startup_stats().from_checkpoint);
      EXPECT_EQ(Fingerprint(&chain, seed), expected) << "starved pool";
      const BufferManager::Stats stats = chain.buffer_stats();
      EXPECT_LE(stats.usage, 8 * kPageSize);
      EXPECT_GT(stats.evictions, 0u);
      chain.Close();
    }

    // Rebuild-from-scratch: same directory, checkpoints removed — the full
    // replay must reconstruct the exact same state.
    ASSERT_TRUE(
        Env::Default()->RemoveDirRecursive(dir.path() + "/checkpoints").ok());
    {
      ChainManager chain("rebuild", nullptr);
      ASSERT_TRUE(chain.Open(EquivChainOptions(0, 64 << 20, false),
                             dir.path())
                      .ok());
      const ChainManager::StartupStats startup = chain.startup_stats();
      EXPECT_FALSE(startup.from_checkpoint);
      EXPECT_EQ(startup.replayed_blocks, chain.height());
      EXPECT_EQ(Fingerprint(&chain, seed), expected) << "full rebuild";
      chain.Close();
    }
    mem.Close();
  }
}

// A restart in the middle of the workload — restore, then keep appending,
// checkpointing, and restarting — converges to the same answers as the
// uninterrupted chain.
TEST(CheckpointEquivalenceTest, RestartMidWorkloadConverges) {
  const uint64_t seed = 99;
  const Workload w = MakeWorkload(seed);

  ScratchDir mem_dir("equiv_mid_mem");
  ChainManager mem("mem", nullptr);
  ASSERT_TRUE(
      mem.Open(EquivChainOptions(0, 64 << 20, false), mem_dir.path()).ok());
  RunWorkload(&mem, w);
  const std::string expected = Fingerprint(&mem, seed);

  ScratchDir dir("equiv_mid");
  uint64_t next_seq = 0;
  // Three sessions over one directory, each appending a third of the blocks
  // (manifest-recorded CREATE INDEX lands in session 1 and must survive).
  for (int session = 0; session < 3; session++) {
    ChainManager chain("node", nullptr);
    ASSERT_TRUE(chain.Open(EquivChainOptions(5, 64 << 20, true), dir.path())
                    .ok());
    ASSERT_EQ(chain.height(), next_seq + 1);  // nothing acked was lost
    const uint64_t until = std::min<uint64_t>(
        w.batches.size(), (session + 1) * (w.batches.size() / 3 + 1));
    for (; next_seq < until; next_seq++) {
      if (next_seq == w.create_index_after) {
        ASSERT_TRUE(chain.indexes()
                        ->CreateLayeredIndex("t", "v",
                                             Schema::kNumSystemColumns,
                                             /*discrete=*/false)
                        .ok());
      }
      std::vector<Transaction> txns = w.batches[next_seq];
      Timestamp ts = 0;
      for (const auto& txn : txns) ts = std::max(ts, txn.ts());
      ASSERT_TRUE(
          chain.AppendBatch(next_seq, std::move(txns), ts, "sig")
              .ok());
    }
    if (next_seq == w.batches.size()) {
      EXPECT_EQ(Fingerprint(&chain, seed), expected)
          << "session " << session;
    }
    chain.Close();
  }
  ASSERT_EQ(next_seq, w.batches.size());

  // Final restart: clean shutdown above wrote a checkpoint, so this restore
  // replays no tail — and still answers identically.
  ChainManager final_chain("final", nullptr);
  ASSERT_TRUE(final_chain.Open(EquivChainOptions(0, 64 << 20, false),
                               dir.path())
                  .ok());
  EXPECT_TRUE(final_chain.startup_stats().from_checkpoint);
  EXPECT_EQ(final_chain.startup_stats().replayed_blocks, 0u);
  EXPECT_EQ(Fingerprint(&final_chain, seed), expected);
  final_chain.Close();
  mem.Close();
}

}  // namespace
}  // namespace sebdb
