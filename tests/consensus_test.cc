// Tests for the consensus engines: Kafka-style ordering, PBFT (including a
// view change under primary failure) and the Tendermint-style engine.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>

#include "common/coding.h"
#include "consensus/kafka_orderer.h"
#include "consensus/pbft.h"
#include "consensus/tendermint.h"
#include "network/sim_network.h"
#include "tests/test_util.h"

namespace sebdb {
namespace {

using testing_util::MakeTxn;

// Collects committed batches per node and lets tests wait on progress.
class CommitLog {
 public:
  BatchCommitFn MakeFn() {
    return [this](uint64_t seq, std::vector<Transaction> txns) {
      std::lock_guard<std::mutex> lock(mu_);
      sequences_.push_back(seq);
      for (auto& txn : txns) txns_.push_back(std::move(txn));
      cv_.notify_all();
    };
  }
  bool WaitForTxns(size_t n, int timeout_ms = 10000) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                        [&] { return txns_.size() >= n; });
  }
  std::vector<uint64_t> sequences() {
    std::lock_guard<std::mutex> lock(mu_);
    return sequences_;
  }
  std::vector<Transaction> txns() {
    std::lock_guard<std::mutex> lock(mu_);
    return txns_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<uint64_t> sequences_;
  std::vector<Transaction> txns_;
};

template <typename Engine>
struct NodeHarness {
  // Unregister joins the delivery worker, so the handler's captured engine
  // pointer cannot be invoked once the harness starts tearing down.
  ~NodeHarness() {
    if (net != nullptr) net->Unregister(id);
    if (engine) engine->Stop();
  }
  std::unique_ptr<Engine> engine;
  CommitLog log;
  SimNetwork* net = nullptr;
  std::string id;
};

ConsensusOptions FastOptions(uint32_t max_batch = 10) {
  ConsensusOptions options;
  options.max_batch_txns = max_batch;
  options.batch_timeout_millis = 20;
  return options;
}

TEST(KafkaOrdererTest, OrdersAndDeliversOnAllNodes) {
  SimNetwork net;
  std::vector<std::string> ids = {"n0", "n1", "n2", "n3"};
  std::vector<std::unique_ptr<NodeHarness<KafkaOrderer>>> nodes;
  for (const auto& id : ids) {
    auto h = std::make_unique<NodeHarness<KafkaOrderer>>();
    h->net = &net;
    h->id = id;
    h->engine = std::make_unique<KafkaOrderer>(id, "n0", ids, &net,
                                               FastOptions(), h->log.MakeFn());
    KafkaOrderer* engine = h->engine.get();
    ASSERT_TRUE(
        net.Register(id, [engine](const Message& m) { engine->HandleMessage(m); })
            .ok());
    ASSERT_TRUE(h->engine->Start().ok());
    nodes.push_back(std::move(h));
  }
  EXPECT_TRUE(nodes[0]->engine->is_broker());
  EXPECT_FALSE(nodes[1]->engine->is_broker());

  std::atomic<int> acks{0};
  for (int i = 0; i < 25; i++) {
    Transaction txn = MakeTxn("t", "client", 1000 + i, {Value::Int(i)});
    ASSERT_TRUE(nodes[i % 4]
                    ->engine
                    ->Submit(txn, [&](Status s) {
                      EXPECT_TRUE(s.ok());
                      acks++;
                    })
                    .ok());
  }
  for (auto& node : nodes) {
    EXPECT_TRUE(node->log.WaitForTxns(25)) << "node missing transactions";
  }
  // Every node saw the same order.
  auto reference = nodes[0]->log.txns();
  for (auto& node : nodes) {
    auto txns = node->log.txns();
    ASSERT_EQ(txns.size(), reference.size());
    for (size_t i = 0; i < txns.size(); i++) EXPECT_EQ(txns[i], reference[i]);
    auto seqs = node->log.sequences();
    for (size_t i = 0; i < seqs.size(); i++) EXPECT_EQ(seqs[i], i);
  }
  for (int i = 0; i < 100 && acks.load() < 25; i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(acks.load(), 25);
  for (auto& node : nodes) node->engine->Stop();
}

TEST(KafkaOrdererTest, TimeoutCutsPartialBatch) {
  SimNetwork net;
  std::vector<std::string> ids = {"n0"};
  NodeHarness<KafkaOrderer> h;
  h.net = &net;
  h.id = "n0";
  h.engine = std::make_unique<KafkaOrderer>("n0", "n0", ids, &net,
                                            FastOptions(1000), h.log.MakeFn());
  KafkaOrderer* engine = h.engine.get();
  ASSERT_TRUE(
      net.Register("n0", [engine](const Message& m) { engine->HandleMessage(m); })
          .ok());
  ASSERT_TRUE(h.engine->Start().ok());
  // 3 txns, far below the 1000 cut size: only the timeout can cut.
  for (int i = 0; i < 3; i++) {
    ASSERT_TRUE(
        h.engine->Submit(MakeTxn("t", "c", i, {Value::Int(i)}), nullptr).ok());
  }
  EXPECT_TRUE(h.log.WaitForTxns(3));
  EXPECT_EQ(h.engine->committed_batches(), 1u);
  h.engine->Stop();
}

TEST(KafkaOrdererTest, ValidatorRejectsBadTransactions) {
  SimNetwork net;
  ConsensusOptions options = FastOptions();
  options.validator = [](const Transaction& txn) {
    return txn.sender().empty() ? Status::InvalidArgument("no sender")
                                : Status::OK();
  };
  CommitLog log;
  KafkaOrderer engine("n0", "n0", {"n0"}, &net, options, log.MakeFn());
  ASSERT_TRUE(
      net.Register("n0", [&](const Message& m) { engine.HandleMessage(m); })
          .ok());
  ASSERT_TRUE(engine.Start().ok());
  Transaction bad("t", {});
  Status done_status;
  EXPECT_FALSE(engine
                   .Submit(bad, [&](Status s) { done_status = s; })
                   .ok());
  EXPECT_TRUE(done_status.IsInvalidArgument());
  ASSERT_TRUE(net.Unregister("n0").ok());
  engine.Stop();
}

template <typename Engine, typename... Extra>
std::vector<std::unique_ptr<NodeHarness<Engine>>> StartCluster(
    SimNetwork* net, const std::vector<std::string>& ids,
    const ConsensusOptions& options, Extra... extra) {
  std::vector<std::unique_ptr<NodeHarness<Engine>>> nodes;
  for (const auto& id : ids) {
    auto h = std::make_unique<NodeHarness<Engine>>();
    h->net = net;
    h->id = id;
    h->engine = std::make_unique<Engine>(id, ids, net, options,
                                         h->log.MakeFn(), extra...);
    Engine* engine = h->engine.get();
    EXPECT_TRUE(
        net->Register(id,
                      [engine](const Message& m) { engine->HandleMessage(m); })
            .ok());
    EXPECT_TRUE(h->engine->Start().ok());
    nodes.push_back(std::move(h));
  }
  return nodes;
}

TEST(PbftTest, CommitsAcrossFourReplicas) {
  SimNetwork net;
  std::vector<std::string> ids = {"r0", "r1", "r2", "r3"};
  auto nodes = StartCluster<PbftEngine>(&net, ids, FastOptions());
  EXPECT_EQ(nodes[0]->engine->max_faulty(), 1);
  EXPECT_TRUE(nodes[0]->engine->is_primary());

  std::atomic<int> acks{0};
  for (int i = 0; i < 30; i++) {
    ASSERT_TRUE(nodes[i % 4]
                    ->engine
                    ->Submit(MakeTxn("t", "c", 100 + i, {Value::Int(i)}),
                             [&](Status s) {
                               if (s.ok()) acks++;
                             })
                    .ok());
  }
  for (auto& node : nodes) EXPECT_TRUE(node->log.WaitForTxns(30));
  auto reference = nodes[0]->log.txns();
  for (auto& node : nodes) {
    auto txns = node->log.txns();
    ASSERT_EQ(txns.size(), reference.size());
    for (size_t i = 0; i < txns.size(); i++) EXPECT_EQ(txns[i], reference[i]);
  }
  for (auto& node : nodes) node->engine->Stop();
}

TEST(PbftTest, ViewChangeOnPrimaryFailure) {
  SimNetwork net;
  std::vector<std::string> ids = {"r0", "r1", "r2", "r3"};
  PbftOptions pbft_options;
  pbft_options.view_timeout_millis = 200;
  auto nodes =
      StartCluster<PbftEngine>(&net, ids, FastOptions(), pbft_options);

  // Isolate the primary r0 before it sees anything.
  for (const auto& other : {"r1", "r2", "r3"}) {
    net.SetLinkDown("r0", other, true);
  }
  std::atomic<int> acks{0};
  for (int i = 0; i < 5; i++) {
    ASSERT_TRUE(nodes[1]
                    ->engine
                    ->Submit(MakeTxn("t", "c", 100 + i, {Value::Int(i)}),
                             [&](Status s) {
                               if (s.ok()) acks++;
                             })
                    .ok());
  }
  // Replicas r1..r3 should time out, move to view 1 (primary r1) and commit.
  for (int i = 1; i < 4; i++) {
    EXPECT_TRUE(nodes[i]->log.WaitForTxns(5, 15000)) << "replica " << i;
    EXPECT_GE(nodes[i]->engine->view(), 1u);
  }
  for (int i = 0; i < 200 && acks.load() < 5; i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(acks.load(), 5);
  for (auto& node : nodes) node->engine->Stop();
}

TEST(TendermintTest, CommitsAcrossFourValidators) {
  SimNetwork net;
  std::vector<std::string> ids = {"v0", "v1", "v2", "v3"};
  TendermintOptions tm_options;
  tm_options.serial_txn_cost_micros = 0;  // keep the test fast
  auto nodes =
      StartCluster<TendermintEngine>(&net, ids, FastOptions(), tm_options);

  std::atomic<int> acks{0};
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(nodes[i % 4]
                    ->engine
                    ->Submit(MakeTxn("t", "c", 100 + i, {Value::Int(i)}),
                             [&](Status s) {
                               if (s.ok()) acks++;
                             })
                    .ok());
  }
  for (auto& node : nodes) EXPECT_TRUE(node->log.WaitForTxns(20));
  auto reference = nodes[0]->log.txns();
  for (auto& node : nodes) {
    auto txns = node->log.txns();
    ASSERT_EQ(txns.size(), reference.size());
    for (size_t i = 0; i < txns.size(); i++) EXPECT_EQ(txns[i], reference[i]);
  }
  for (auto& node : nodes) node->engine->Stop();
}

TEST(TendermintTest, SerialCostSlowsDelivery) {
  // Not a timing assertion, just that the serial path still commits.
  SimNetwork net;
  std::vector<std::string> ids = {"v0", "v1", "v2", "v3"};
  TendermintOptions tm_options;
  tm_options.serial_txn_cost_micros = 100;
  auto nodes =
      StartCluster<TendermintEngine>(&net, ids, FastOptions(), tm_options);
  ASSERT_TRUE(nodes[0]
                  ->engine
                  ->Submit(MakeTxn("t", "c", 5, {Value::Int(1)}), nullptr)
                  .ok());
  for (auto& node : nodes) EXPECT_TRUE(node->log.WaitForTxns(1));
  for (auto& node : nodes) node->engine->Stop();
}

TEST(TendermintTest, ProposerFailureRotatesRound) {
  SimNetwork net;
  std::vector<std::string> ids = {"v0", "v1", "v2", "v3"};
  TendermintOptions tm_options;
  tm_options.serial_txn_cost_micros = 0;
  tm_options.propose_timeout_millis = 200;
  auto nodes =
      StartCluster<TendermintEngine>(&net, ids, FastOptions(), tm_options);

  // Height 0's proposer is v0; isolate it so the round times out and the
  // next proposer (v1 at round 1) takes over.
  for (const auto& other : {"v1", "v2", "v3"}) {
    net.SetLinkDown("v0", other, true);
  }
  std::atomic<int> acks{0};
  for (int i = 0; i < 3; i++) {
    ASSERT_TRUE(nodes[1]
                    ->engine
                    ->Submit(MakeTxn("t", "c", 100 + i, {Value::Int(i)}),
                             [&](Status s) {
                               if (s.ok()) acks++;
                             })
                    .ok());
  }
  for (int i = 1; i < 4; i++) {
    EXPECT_TRUE(nodes[i]->log.WaitForTxns(3, 15000)) << "validator " << i;
  }
  for (int i = 0; i < 200 && acks.load() < 3; i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(acks.load(), 3);
  for (auto& node : nodes) node->engine->Stop();
}

TEST(PbftTest, RejectsPrePrepareFromNonPrimary) {
  SimNetwork net;
  std::vector<std::string> ids = {"r0", "r1", "r2", "r3"};
  auto nodes = StartCluster<PbftEngine>(&net, ids, FastOptions());

  // A Byzantine backup (r2) forges a pre-prepare; honest replicas must
  // ignore it (only the view's primary proposes).
  std::vector<Transaction> forged_batch = {
      MakeTxn("t", "mallory", 1, {Value::Int(666)})};
  std::string batch_payload;
  EncodeBatch(forged_batch, &batch_payload);
  std::string payload;
  PutVarint64(&payload, 0);  // view 0
  PutVarint64(&payload, 0);  // seq 0
  PutLengthPrefixed(&payload, batch_payload);
  for (const auto& target : {"r1", "r3"}) {
    net.Send({"pbft.preprepare", "r2", target, payload});
  }
  net.DrainAll();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  for (auto& node : nodes) {
    EXPECT_EQ(node->engine->committed_batches(), 0u);
  }

  // The cluster still works for legitimate requests afterwards.
  std::atomic<int> acks{0};
  ASSERT_TRUE(nodes[0]
                  ->engine
                  ->Submit(MakeTxn("t", "c", 5, {Value::Int(1)}),
                           [&](Status s) {
                             if (s.ok()) acks++;
                           })
                  .ok());
  for (auto& node : nodes) EXPECT_TRUE(node->log.WaitForTxns(1));
  for (auto& node : nodes) node->engine->Stop();
}

TEST(KafkaOrdererTest, StopFailsPendingCallbacks) {
  SimNetwork net;
  CommitLog log;
  KafkaOrderer engine("n0", "broker-gone", {"n0"}, &net, FastOptions(10000),
                      log.MakeFn());
  ASSERT_TRUE(
      net.Register("n0", [&](const Message& m) { engine.HandleMessage(m); })
          .ok());
  ASSERT_TRUE(engine.Start().ok());
  // The broker does not exist, so this submission can never commit.
  Status done_status;
  std::atomic<bool> fired{false};
  ASSERT_TRUE(engine
                  .Submit(MakeTxn("t", "c", 1, {Value::Int(1)}),
                          [&](Status s) {
                            done_status = s;
                            fired = true;
                          })
                  .ok());
  engine.Stop();
  EXPECT_TRUE(fired.load());
  EXPECT_TRUE(done_status.IsAborted());
  ASSERT_TRUE(net.Unregister("n0").ok());
}

TEST(BatchCodecTest, RoundTrip) {
  std::vector<Transaction> batch = {MakeTxn("a", "s1", 1, {Value::Int(1)}),
                                    MakeTxn("b", "s2", 2, {Value::Str("x")})};
  std::string buf;
  EncodeBatch(batch, &buf);
  Slice input(buf);
  std::vector<Transaction> decoded;
  ASSERT_TRUE(DecodeBatch(&input, &decoded).ok());
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0], batch[0]);
  EXPECT_EQ(decoded[1], batch[1]);
  EXPECT_FALSE(BatchDigest(buf).IsZero());
}

}  // namespace
}  // namespace sebdb
