// TcpNetwork in-process tests: frame codec strictness, real-socket
// delivery, connection supervision (reconnect, heartbeat staleness, peer
// watchers), bounded-queue shedding, hostile-bytes rejection, and RPC over
// TCP loopback. Multi-process behavior (kill -9, SIGSTOP) lives in
// cluster_test.cc.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "network/frame.h"
#include "network/rpc.h"
#include "network/tcp_network.h"

namespace sebdb {
namespace {

Message MakeMessage(const std::string& type, const std::string& from,
                    const std::string& to, const std::string& payload) {
  return Message{type, from, to, payload};
}

bool WaitFor(const std::function<bool()>& pred, int64_t timeout_millis) {
  int64_t deadline = SteadyNowMillis() + timeout_millis;
  while (SteadyNowMillis() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

// ---- frame codec ----

TEST(FrameCodec, RoundTrip) {
  Message in = MakeMessage("gossip.digest", "node1", "node2", "payload-bytes");
  std::string wire;
  EncodeFrame(in, &wire);
  ASSERT_GE(wire.size(), kFrameHeaderBytes);

  Slice input(wire);
  Message out;
  ASSERT_TRUE(DecodeFrame(&input, kDefaultMaxFrameBytes, &out).ok());
  EXPECT_TRUE(input.empty());
  EXPECT_EQ(out.type, in.type);
  EXPECT_EQ(out.from, in.from);
  EXPECT_EQ(out.to, in.to);
  EXPECT_EQ(out.payload, in.payload);
}

TEST(FrameCodec, RejectsBadMagicVersionLengthCrc) {
  Message in = MakeMessage("rpc.request", "c", "s", "body");
  std::string wire;
  EncodeFrame(in, &wire);

  {  // magic
    std::string bad = wire;
    bad[0] ^= 0x5a;
    Slice input(bad);
    Message out;
    EXPECT_TRUE(DecodeFrame(&input, kDefaultMaxFrameBytes, &out).IsCorruption());
  }
  {  // version
    std::string bad = wire;
    bad[4] = 99;
    Slice input(bad);
    Message out;
    EXPECT_TRUE(DecodeFrame(&input, kDefaultMaxFrameBytes, &out).IsCorruption());
  }
  {  // declared length over the cap: must reject BEFORE wanting more bytes
    std::string bad = wire;
    bad[5] = '\xff';
    bad[6] = '\xff';
    bad[7] = '\xff';
    bad[8] = '\x7f';
    Slice input(bad);
    Message out;
    Status s = DecodeFrame(&input, /*max_frame_bytes=*/1 << 20, &out);
    EXPECT_TRUE(s.IsCorruption());
    EXPECT_NE(s.message().find("cap"), std::string::npos);
  }
  {  // payload corruption -> CRC mismatch
    std::string bad = wire;
    bad[kFrameHeaderBytes + 2] ^= 0x01;
    Slice input(bad);
    Message out;
    EXPECT_TRUE(DecodeFrame(&input, kDefaultMaxFrameBytes, &out).IsCorruption());
  }
  {  // trailing bytes inside the declared payload
    Message empty_type = in;
    std::string payload_wire;
    EncodeFrame(empty_type, &payload_wire);
    payload_wire += "x";  // extra byte beyond the frame
    Slice input(payload_wire);
    Message out;
    EXPECT_TRUE(DecodeFrame(&input, kDefaultMaxFrameBytes, &out).ok());
    EXPECT_EQ(input.size(), 1u);  // codec consumes exactly one frame
  }
}

TEST(FrameCodec, TypeAllowlist) {
  EXPECT_TRUE(IsAllowedMessageType("gossip.digest"));
  EXPECT_TRUE(IsAllowedMessageType("rpc.request"));
  EXPECT_TRUE(IsAllowedMessageType("thin.submit"));
  EXPECT_TRUE(IsAllowedMessageType("net.ping"));
  EXPECT_TRUE(IsAllowedMessageType("kafka.submit"));
  EXPECT_FALSE(IsAllowedMessageType(""));
  EXPECT_FALSE(IsAllowedMessageType("gossip."));  // prefix alone is not a type
  EXPECT_FALSE(IsAllowedMessageType("evil.inject"));
  EXPECT_FALSE(IsAllowedMessageType("GOSSIP.DIGEST"));
  EXPECT_FALSE(IsAllowedMessageType("rpc.request\n"));
  EXPECT_FALSE(IsAllowedMessageType(std::string(65, 'a')));

  Message bad = MakeMessage("evil.inject", "a", "b", "");
  std::string wire;
  EncodeFrame(bad, &wire);
  Slice input(wire);
  Message out;
  EXPECT_TRUE(DecodeFrame(&input, kDefaultMaxFrameBytes, &out).IsCorruption());
}

// ---- two real processes' worth of sockets, one test process ----

struct Pair {
  TcpNetwork a;
  TcpNetwork b;

  static TcpNetworkOptions Opts(const std::string& id) {
    TcpNetworkOptions o;
    o.local_id = id;
    o.listen_port = 0;
    o.heartbeat_interval_millis = 50;
    o.peer_down_after_millis = 400;
    o.reconnect_backoff_initial_millis = 20;
    o.reconnect_backoff_max_millis = 100;
    return o;
  }

  // b supervises a link to a; a supervises a link to b (ports learned after
  // both listeners are up, via a second Start on fresh objects) — instead,
  // construct a first, then point b at a's bound port, and give a a
  // supervised link to b the same way via late construction.
  Pair() : a(Opts("a")), b(BOpts()) {}

  TcpNetworkOptions BOpts() {
    EXPECT_TRUE(a.Start().ok());
    TcpNetworkOptions o = Opts("b");
    o.peers.push_back(TcpPeer{"a", "127.0.0.1", a.listen_port()});
    return o;
  }
};

TEST(TcpNetworkTest, DeliversBothDirectionsOverOneSupervisedLink) {
  Pair pair;
  ASSERT_TRUE(pair.b.Start().ok());

  std::atomic<int> got_a{0}, got_b{0};
  std::string seen_payload;
  ASSERT_TRUE(pair.a
                  .Register("a",
                            [&](const Message& m) {
                              seen_payload = m.payload;
                              got_a++;
                            })
                  .ok());
  ASSERT_TRUE(pair.b.Register("b", [&](const Message&) { got_b++; }).ok());

  ASSERT_TRUE(WaitFor([&] { return pair.b.PeerUp("a"); }, 3000));

  // b -> a over the supervised link.
  pair.b.Send(MakeMessage("gossip.digest", "b", "a", "hello"));
  ASSERT_TRUE(WaitFor([&] { return got_a.load() == 1; }, 3000));
  EXPECT_EQ(seen_payload, "hello");

  // a -> b rides the dynamic route learned from b's frames.
  pair.a.Send(MakeMessage("gossip.digest", "a", "b", "reply"));
  ASSERT_TRUE(WaitFor([&] { return got_b.load() == 1; }, 3000));

  const NetworkStats stats = pair.a.stats();
  EXPECT_EQ(stats.frames_rejected, 0u);
}

TEST(TcpNetworkTest, PeerWatcherSeesDownOnShutdownAndUpOnRestart) {
  TcpNetworkOptions server_opts = Pair::Opts("server");
  auto server = std::make_unique<TcpNetwork>(server_opts);
  ASSERT_TRUE(server->Start().ok());
  const uint16_t port = server->listen_port();

  TcpNetworkOptions client_opts = Pair::Opts("client");
  client_opts.peers.push_back(TcpPeer{"server", "127.0.0.1", port});
  TcpNetwork client(client_opts);

  Mutex mu;
  std::vector<std::pair<std::string, bool>> events;
  client.AddPeerWatcher([&](const std::string& peer, bool up) {
    MutexLock lock(&mu);
    events.push_back({peer, up});
  });
  ASSERT_TRUE(client.Start().ok());
  ASSERT_TRUE(WaitFor([&] { return client.PeerUp("server"); }, 3000));

  // Hard-stop the server: reconnects fail until a new listener appears on
  // the same port.
  server->Shutdown();
  ASSERT_TRUE(WaitFor([&] { return !client.PeerUp("server"); }, 3000));

  TcpNetworkOptions restart_opts = server_opts;
  restart_opts.listen_port = port;  // come back on the address clients know
  server = std::make_unique<TcpNetwork>(restart_opts);
  ASSERT_TRUE(server->Start().ok());
  ASSERT_TRUE(WaitFor([&] { return client.PeerUp("server"); }, 5000));

  MutexLock lock(&mu);
  ASSERT_GE(events.size(), 3u);
  EXPECT_EQ(events[0], (std::pair<std::string, bool>{"server", true}));
  bool saw_down = false, saw_reup = false;
  for (size_t i = 1; i < events.size(); i++) {
    if (events[i].first == "server" && !events[i].second) saw_down = true;
    if (saw_down && events[i].second) saw_reup = true;
  }
  EXPECT_TRUE(saw_down);
  EXPECT_TRUE(saw_reup);
  const TcpTransportStats tcp = client.tcp_stats();
  EXPECT_GE(tcp.peer_down_events, 1u);
  EXPECT_GE(tcp.connects_ok, 2u);
}

TEST(TcpNetworkTest, BoundedSendQueueShedsOldestWhilePeerDown) {
  TcpNetworkOptions opts = Pair::Opts("lonely");
  opts.peers.push_back(TcpPeer{"ghost", "127.0.0.1", 1});  // nothing listens
  opts.max_send_queue_per_peer = 8;
  TcpNetwork net(opts);
  ASSERT_TRUE(net.Start().ok());

  for (int i = 0; i < 50; i++) {
    net.Send(MakeMessage("gossip.digest", "lonely", "ghost",
                         "m" + std::to_string(i)));
  }
  const NetworkStats stats = net.stats();
  EXPECT_EQ(stats.messages_sent, 50u);
  // 8 queued for the (never-arriving) reconnect; the rest shed oldest-first.
  EXPECT_EQ(stats.overflow_drops, 42u);
  EXPECT_EQ(stats.messages_dropped, 42u);
}

TEST(TcpNetworkTest, UnknownDestinationCountsUnreachable) {
  TcpNetworkOptions opts = Pair::Opts("solo");
  TcpNetwork net(opts);
  ASSERT_TRUE(net.Start().ok());
  net.Send(MakeMessage("gossip.digest", "solo", "nobody", ""));
  EXPECT_EQ(net.stats().unreachable_drops, 1u);
}

TEST(TcpNetworkTest, HostileBytesAreRejectedNotFatal) {
  TcpNetworkOptions opts = Pair::Opts("victim");
  opts.max_frame_bytes = 1 << 20;
  TcpNetwork net(opts);
  ASSERT_TRUE(net.Start().ok());
  std::atomic<int> delivered{0};
  ASSERT_TRUE(net.Register("victim",
                           [&](const Message&) { delivered++; }).ok());

  auto attack = [&](const std::string& bytes) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(net.listen_port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
    // Give the reader a moment, then hang up.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ::close(fd);
  };

  attack("GET / HTTP/1.1\r\n\r\n");          // garbage magic
  attack(std::string(kFrameHeaderBytes, '\0'));  // zeroed header

  // A declared 2GB frame must be rejected from the header alone.
  std::string huge;
  Message m = MakeMessage("gossip.digest", "x", "victim", "");
  EncodeFrame(m, &huge);
  huge[5] = '\xff';
  huge[6] = '\xff';
  huge[7] = '\xff';
  huge[8] = '\x7f';
  attack(huge);

  // A CRC-valid frame whose type fails the allowlist: EncodeFrame does not
  // validate (it trusts local senders), which is what a hostile remote
  // would exploit — the decoder must still refuse it.
  std::string evil;
  EncodeFrame(MakeMessage("evil.cmd", "x", "victim", ""), &evil);
  attack(evil);

  ASSERT_TRUE(WaitFor([&] { return net.stats().frames_rejected >= 4; }, 3000));
  EXPECT_EQ(delivered.load(), 0);

  // The transport survived; a well-formed frame still flows.
  std::string good;
  EncodeFrame(MakeMessage("gossip.digest", "x", "victim", "fine"), &good);
  attack(good);
  ASSERT_TRUE(WaitFor([&] { return delivered.load() == 1; }, 3000));
}

TEST(TcpNetworkTest, RpcOverTcpLoopback) {
  TcpNetworkOptions server_opts = Pair::Opts("server");
  TcpNetwork server_net(server_opts);
  ASSERT_TRUE(server_net.Start().ok());

  RpcDispatcher dispatcher;
  dispatcher.RegisterMethod(
      "rpc.echo", [](const Slice& request, std::string* response) {
        response->assign(request.data(), request.size());
        return Status::OK();
      });
  dispatcher.Start(RpcServerOptions{});
  ASSERT_TRUE(server_net
                  .Register("server",
                            [&](const Message& m) {
                              if (m.type == RpcDispatcher::kRequestType) {
                                dispatcher.HandleMessage(&server_net, "server",
                                                         m);
                              }
                            })
                  .ok());

  TcpNetworkOptions client_opts = Pair::Opts("client");
  client_opts.peers.push_back(
      TcpPeer{"server", "127.0.0.1", server_net.listen_port()});
  TcpNetwork client_net(client_opts);
  ASSERT_TRUE(client_net.Start().ok());

  RpcClient client("client", &client_net);
  std::string response;
  Status s = client.Call("server", "rpc.echo", "ping-pong", &response,
                         /*timeout_millis=*/5000);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(response, "ping-pong");
  dispatcher.Stop();
}

TEST(TcpNetworkTest, FaultShimDropsAndDelays) {
  TcpNetworkOptions server_opts = Pair::Opts("server");
  TcpNetwork server_net(server_opts);
  ASSERT_TRUE(server_net.Start().ok());
  std::atomic<int> delivered{0};
  ASSERT_TRUE(server_net
                  .Register("server", [&](const Message&) { delivered++; })
                  .ok());

  std::atomic<int> sent{0};
  TcpNetworkOptions client_opts = Pair::Opts("client");
  client_opts.peers.push_back(
      TcpPeer{"server", "127.0.0.1", server_net.listen_port()});
  client_opts.send_fault = [&](const Message&) {
    TcpNetworkOptions::Fault fault;
    fault.drop = (sent++ % 2) == 0;  // drop every other frame
    return fault;
  };
  TcpNetwork client_net(client_opts);
  ASSERT_TRUE(client_net.Start().ok());
  ASSERT_TRUE(WaitFor([&] { return client_net.PeerUp("server"); }, 3000));

  for (int i = 0; i < 10; i++) {
    client_net.Send(MakeMessage("gossip.digest", "client", "server", "x"));
  }
  ASSERT_TRUE(WaitFor([&] { return delivered.load() == 5; }, 3000));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(delivered.load(), 5);
  EXPECT_EQ(client_net.stats().random_drops, 5u);
}

}  // namespace
}  // namespace sebdb
