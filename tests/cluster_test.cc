// Process-level chaos test (ctest label "cluster"): forks real sebdb_server
// processes wired over TCP, drives signed traffic through the thin-client
// transport with failover, and injects the failures the transport contract
// (DESIGN.md §15) promises to survive:
//
//   - kill -9 of a follower mid-traffic, later restarted (recovery replay +
//     gossip catch-up over real sockets);
//   - SIGSTOP/SIGCONT of another follower (a peer that is alive at the TCP
//     level but silent at the application level — heartbeat staleness);
//   - hostile bytes on a node's listen port (frames_rejected, not a crash).
//
// Afterwards it asserts the cluster converged: every node at the same
// height with byte-identical tip blocks, and every acked transaction
// present in the restarted victim's chain (zero acked-txn loss).
//
// The server binary path is baked in via SEBDB_SERVER_BIN (tests/CMakeLists).

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/slice.h"
#include "core/cluster_config.h"
#include "storage/block.h"
#include "core/thin_client_transport.h"
#include "network/tcp_network.h"
#include "test_util.h"
#include "types/transaction.h"

namespace sebdb {
namespace {

using testing_util::ScratchDir;

bool WaitUntil(const std::function<bool()>& pred, int64_t timeout_millis) {
  int64_t deadline = SteadyNowMillis() + timeout_millis;
  while (SteadyNowMillis() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return pred();
}

/// Reserves a free TCP port by binding port 0 and closing. The tiny window
/// before the server rebinds it is acceptable for a loopback test.
uint16_t ReservePort() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

/// One forked sebdb_server. Keeps the pid and guarantees the process is
/// gone at scope exit even when an assertion bails out early.
class ServerProcess {
 public:
  ServerProcess() = default;
  ~ServerProcess() { Kill(); }

  void Spawn(const std::vector<std::string>& args,
             const std::string& log_path) {
    pid_ = ::fork();
    ASSERT_GE(pid_, 0);
    if (pid_ == 0) {
      int log_fd =
          ::open(log_path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
      if (log_fd >= 0) {
        ::dup2(log_fd, STDOUT_FILENO);
        ::dup2(log_fd, STDERR_FILENO);
        ::close(log_fd);
      }
      std::vector<char*> argv;
      argv.push_back(const_cast<char*>(SEBDB_SERVER_BIN));
      for (const auto& arg : args) {
        argv.push_back(const_cast<char*>(arg.c_str()));
      }
      argv.push_back(nullptr);
      ::execv(SEBDB_SERVER_BIN, argv.data());
      _exit(127);  // exec failed
    }
  }

  void Kill() {  // kill -9 + reap; idempotent
    if (pid_ <= 0) return;
    ::kill(pid_, SIGKILL);
    ::waitpid(pid_, nullptr, 0);
    pid_ = -1;
  }

  void Terminate() {  // graceful stop + reap
    if (pid_ <= 0) return;
    ::kill(pid_, SIGTERM);
    ::waitpid(pid_, nullptr, 0);
    pid_ = -1;
  }

  void Stop() { ::kill(pid_, SIGSTOP); }
  void Cont() { ::kill(pid_, SIGCONT); }
  bool alive() const { return pid_ > 0; }

 private:
  pid_t pid_ = -1;
};

class ClusterTest : public ::testing::Test {
 protected:
  static constexpr int kNodes = 3;

  void SetUp() override {
    scratch_ = std::make_unique<ScratchDir>("cluster");
    std::string conf_text;
    for (int i = 1; i <= kNodes; i++) {
      ports_[i - 1] = ReservePort();
      conf_text += "node node" + std::to_string(i) + " 127.0.0.1 " +
                   std::to_string(ports_[i - 1]) + "\n";
    }
    conf_path_ = scratch_->path() + "/cluster.conf";
    std::ofstream(conf_path_) << conf_text;
    ASSERT_TRUE(ParseClusterConfig(conf_text, &config_).ok());
  }

  void TearDown() override {
    for (auto& server : servers_) server.Kill();
  }

  void SpawnNode(int index) {  // 1-based; node1 is the Kafka broker
    const std::string id = "node" + std::to_string(index);
    std::vector<std::string> args = {
        "--id=" + id,
        "--config=" + conf_path_,
        "--data=" + scratch_->path() + "/" + id,
        "--gossip-interval-ms=25",
        "--heartbeat-ms=100",
        "--peer-down-ms=500",
        "--batch-timeout-ms=20",
    };
    if (index == 1) {
      args.push_back("--init-sql=CREATE kv (k string, v string)");
    }
    servers_[index - 1].Spawn(args, scratch_->path() + "/" + id + ".log");
  }

  std::string NodeId(int index) const {
    return "node" + std::to_string(index);
  }

  /// Failover submit, mirroring a real remote client: walk the node list
  /// until one acks (ack = committed + applied on that node).
  bool SubmitWithFailover(RpcThinTransport* transport, KeyStore* keystore,
                          const std::string& key) {
    Transaction txn("kv", {Value::Str(key), Value::Str("payload-" + key)});
    txn.set_ts(SystemClock::Default()->NowMicros());
    EXPECT_TRUE(keystore->SignTransaction("client-0", &txn).ok());
    for (int round = 0; round < 30; round++) {
      for (int n = 0; n < kNodes; n++) {
        if (transport->Submit(NodeId(1 + n), txn).ok()) return true;
      }
    }
    return false;
  }

  std::unique_ptr<ScratchDir> scratch_;
  std::string conf_path_;
  ClusterConfig config_;
  uint16_t ports_[kNodes] = {};
  ServerProcess servers_[kNodes];
};

TEST_F(ClusterTest, SurvivesKillMinusNineAndSigstopWithZeroAckedLoss) {
  for (int i = 1; i <= kNodes; i++) SpawnNode(i);

  KeyStore keystore;
  ASSERT_TRUE(keystore.AddIdentity("client-0", DevSecret("client-0")).ok());
  TcpNetwork client_net(MakeClusterTcpOptions(config_, "client-0"));
  ASSERT_TRUE(client_net.Start().ok());
  RpcThinTransport transport("client-0", &client_net, config_.NodeIds(),
                             /*call_timeout_millis=*/2000);

  // Every node answering thin.stats == cluster up (genesis + CREATE done).
  auto node_ready = [&](int index) {
    RpcThinTransport::NodeStats stats;
    return transport.GetNodeStats(NodeId(index), &stats).ok();
  };
  for (int i = 1; i <= kNodes; i++) {
    ASSERT_TRUE(WaitUntil([&] { return node_ready(i); }, 20000))
        << "node" << i << " never became ready";
  }

  std::vector<std::string> acked;
  auto drive = [&](int from, int to) {
    for (int i = from; i < to; i++) {
      const std::string key = "client-0-" + std::to_string(i);
      ASSERT_TRUE(SubmitWithFailover(&transport, &keystore, key))
          << "no node acked " << key;
      acked.push_back(key);
    }
  };

  drive(0, 8);  // healthy cluster

  // kill -9 a follower mid-traffic (never node1: it brokers Kafka
  // ordering). Acks must keep flowing via failover.
  servers_[2].Kill();
  drive(8, 16);

  // SIGSTOP another follower: the TCP connection stays established but no
  // pongs flow — the heartbeat staleness bound must declare it down and
  // traffic must keep acking on the remaining node.
  servers_[1].Stop();
  drive(16, 20);
  servers_[1].Cont();

  // Hostile bytes on the broker's listen port: rejected, never fatal.
  {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(ports_[0]);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    const char garbage[] = "GET /chain HTTP/1.0\r\n\r\n";
    ASSERT_GT(::send(fd, garbage, sizeof(garbage) - 1, 0), 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    ::close(fd);
  }

  // Restart the killed follower on its old data dir: recovery replay, then
  // gossip catch-up over real sockets.
  SpawnNode(3);
  ASSERT_TRUE(WaitUntil([&] { return node_ready(3); }, 20000))
      << "node3 never came back";
  drive(20, 24);  // traffic lands with all three alive again

  // Convergence: all nodes reach the same height with the same tip hash.
  RpcThinTransport::NodeStats stats[kNodes];
  auto converged = [&] {
    for (int i = 0; i < kNodes; i++) {
      if (!transport.GetNodeStats(NodeId(1 + i), &stats[i]).ok()) {
        return false;
      }
    }
    return stats[0].height == stats[1].height &&
           stats[1].height == stats[2].height &&
           stats[0].tip_hash == stats[1].tip_hash &&
           stats[1].tip_hash == stats[2].tip_hash;
  };
  ASSERT_TRUE(WaitUntil(converged, 30000))
      << "heights: " << stats[0].height << " " << stats[1].height << " "
      << stats[2].height;
  const uint64_t height = stats[0].height;
  ASSERT_GE(height, 2u);  // genesis + CREATE + data blocks

  // The broker saw our garbage connection and rejected it frame-strictly.
  EXPECT_GE(stats[0].frames_rejected, 1u);

  // Byte-identical tips: fetch the tip record from every node and compare
  // serialized bytes. Each node attests the blocks it applied with its own
  // packager signature (the one legitimately node-local header field, not
  // covered by block_hash), so normalize that out before the byte compare —
  // everything else (prev hash, height, timestamp, trans root, block hash,
  // every transaction byte) must match exactly.
  std::string tips[kNodes];
  for (int i = 0; i < kNodes; i++) {
    std::string record;
    ASSERT_TRUE(
        transport.GetRawBlock(NodeId(1 + i), height - 1, &record).ok());
    Block block;
    Slice input(record);
    ASSERT_TRUE(Block::DecodeFrom(&input, &block).ok());
    ASSERT_TRUE(block.Validate().ok());  // hash/merkle integrity per node
    block.mutable_header()->signature.clear();
    tips[i].clear();
    block.EncodeTo(&tips[i]);
    ASSERT_FALSE(tips[i].empty());
  }
  EXPECT_EQ(tips[0], tips[1]);
  EXPECT_EQ(tips[1], tips[2]);

  // Zero acked-txn loss, audited against the node that was kill -9ed: every
  // acked key must appear in its recovered + caught-up chain. Keys are
  // unique literals, so a raw-bytes scan over all block records is exact.
  std::string chain_bytes;
  for (uint64_t h = 1; h < height; h++) {
    std::string record;
    ASSERT_TRUE(transport.GetRawBlock(NodeId(3), h, &record).ok())
        << "node3 missing block " << h;
    chain_bytes += record;
  }
  ASSERT_EQ(acked.size(), 24u);
  for (const auto& key : acked) {
    EXPECT_NE(chain_bytes.find(key), std::string::npos)
        << "acked txn lost: " << key;
  }

  // Graceful stop for log hygiene (TearDown would SIGKILL).
  for (auto& server : servers_) server.Terminate();
  client_net.Shutdown();
}

}  // namespace
}  // namespace sebdb
