// End-to-end integration: the complete BChainBench schema and all seven
// Table II queries (Q1–Q7) executed against a live 4-node Kafka-ordered
// cluster with off-chain site data, indices, and a thin client auditing the
// results — the paper's whole pipeline in one test.
#include <gtest/gtest.h>

#include "core/node.h"
#include "core/thin_client.h"
#include "tests/test_util.h"
#include "network/sim_network.h"

namespace sebdb {
namespace {

using testing_util::ScratchDir;

class BChainBenchIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<ScratchDir>("bcb_integration");
    ids_ = {"charity", "school", "welfare", "nursinghome"};
    for (const auto& id : ids_) {
      ASSERT_TRUE(keystore_.AddIdentity(id, "s-" + id).ok());
    }
    // DonorInfo lives off-chain at the charity.
    ASSERT_TRUE(offchain_
                    .CreateTable("donorinfo", {{"donee", ValueType::kString},
                                               {"name", ValueType::kString},
                                               {"income", ValueType::kInt64}})
                    .ok());

    for (const auto& id : ids_) {
      NodeOptions options;
      options.node_id = id;
      options.data_dir = dir_->path() + "/" + id;
      options.consensus = ConsensusKind::kKafka;
      options.participants = ids_;
      options.consensus_options.max_batch_txns = 10;
      options.consensus_options.batch_timeout_millis = 20;
      options.gossip.interval_millis = 10;
      auto node = std::make_unique<SebdbNode>(options, &keystore_,
                                              &offchain_);
      ASSERT_TRUE(node->Start(&net_).ok());
      nodes_.push_back(std::move(node));
    }
  }

  void TearDown() override {
    for (auto& node : nodes_) node->Stop();
  }

  SebdbNode* charity() { return nodes_[0].get(); }

  void Sync() {
    uint64_t target = 0;
    for (auto& node : nodes_) {
      target = std::max(target, node->chain().height());
    }
    for (auto& node : nodes_) {
      for (int i = 0; i < 1000 && node->chain().height() < target; i++) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      ASSERT_GE(node->chain().height(), target);
    }
  }

  ResultSet Run(SebdbNode* node, const std::string& sql,
                ExecOptions options = {}) {
    ResultSet result;
    Status s = node->ExecuteSql(sql, options, &result);
    EXPECT_TRUE(s.ok()) << sql << " -> " << s.ToString();
    return result;
  }

  SimNetwork net_;
  std::unique_ptr<ScratchDir> dir_;
  std::vector<std::string> ids_;
  KeyStore keystore_;
  OffchainDb offchain_;
  std::vector<std::unique_ptr<SebdbNode>> nodes_;
};

TEST_F(BChainBenchIntegrationTest, AllSevenQueries) {
  // Schema (paper Fig. 6, on-chain part).
  Run(charity(),
      "CREATE donate (donor string, project string, amount decimal)");
  Run(charity(),
      "CREATE transfer (project string, donor string, organization string, "
      "amount decimal)");
  Run(charity(),
      "CREATE distribute (project string, donor string, organization "
      "string, donee string, amount decimal)");
  Sync();

  // Q1: INSERT INTO donate VALUES(?,?,?) — parameterized writes.
  for (int i = 0; i < 12; i++) {
    ExecOptions options;
    options.params = {Value::Str("donor" + std::to_string(i % 4)),
                      Value::Str(i % 2 == 0 ? "education" : "health"),
                      Value::Int(10 * (i + 1))};
    Run(nodes_[i % 4].get(), "INSERT INTO donate VALUES(?,?,?)", options);
  }
  // Transfers and distributions by org1/org2.
  Transaction txn;
  for (int i = 0; i < 6; i++) {
    ASSERT_TRUE(charity()
                    ->MakeInsertTransaction(
                        "charity", "transfer",
                        {Value::Str("education"), Value::Str("donor0"),
                         Value::Str("org" + std::to_string(i % 2 + 1)),
                         Value::Dec(Decimal::FromInt(100 + i))},
                        &txn)
                    .ok());
    ASSERT_TRUE(charity()->SubmitAndWait(std::move(txn)).ok());
  }
  for (int i = 0; i < 4; i++) {
    ASSERT_TRUE(nodes_[1]
                    ->MakeInsertTransaction(
                        "school", "distribute",
                        {Value::Str("education"), Value::Str("donor0"),
                         Value::Str("org" + std::to_string(i % 2 + 1)),
                         Value::Str("donee" + std::to_string(i)),
                         Value::Dec(Decimal::FromInt(5 + i))},
                        &txn)
                    .ok());
    ASSERT_TRUE(nodes_[1]->SubmitAndWait(std::move(txn)).ok());
  }
  // Off-chain donor info for two donees.
  ASSERT_TRUE(offchain_.Insert("donorinfo", {Value::Str("donee1"),
                                             Value::Str("Tom"),
                                             Value::Int(12000)})
                  .ok());
  ASSERT_TRUE(offchain_.Insert("donorinfo", {Value::Str("donee3"),
                                             Value::Str("Ann"),
                                             Value::Int(8000)})
                  .ok());
  Sync();
  for (auto& node : nodes_) {
    Run(node.get(), "CREATE INDEX ON donate(amount)");
  }

  // Q2: TRACE OPERATOR = 'charity'. The charity sent 3 schema CREATEs, the
  // Q1 inserts with i % 4 == 0 (3 of 12), and 6 transfers.
  ResultSet q2 = Run(nodes_[2].get(), "TRACE OPERATOR = 'charity'");
  EXPECT_EQ(q2.num_rows(), 3u + 3u + 6u);

  // Q3: two-dimension trace in a window covering everything.
  ResultSet q3 = Run(
      nodes_[2].get(),
      "TRACE [0, 99999999999999999] OPERATOR = 'charity', OPERATION = "
      "'transfer'");
  EXPECT_EQ(q3.num_rows(), 6u);

  // Q4: range on donate.amount (amounts 10..120).
  ExecOptions q4_params;
  q4_params.params = {Value::Int(30), Value::Int(80)};
  ResultSet q4 = Run(nodes_[3].get(),
                     "SELECT * FROM donate WHERE amount BETWEEN ? AND ?",
                     q4_params);
  EXPECT_EQ(q4.num_rows(), 6u);  // 30,40,50,60,70,80

  // Q5: on-chain join transfer >< distribute on organization.
  ResultSet q5 = Run(nodes_[0].get(),
                     "SELECT * FROM transfer, distribute ON "
                     "transfer.organization = distribute.organization");
  // org1: 3 transfers x 2 distributes; org2: 3 x 2.
  EXPECT_EQ(q5.num_rows(), 12u);

  // Q6: on-off join distribute >< donorinfo on donee.
  ResultSet q6 = Run(nodes_[0].get(),
                     "SELECT distribute.donee, donorinfo.name, "
                     "donorinfo.income FROM onchain.distribute, "
                     "offchain.donorinfo ON distribute.donee = "
                     "donorinfo.donee");
  EXPECT_EQ(q6.num_rows(), 2u);

  // Q7: GET BLOCK ID=?.
  ExecOptions q7_params;
  q7_params.params = {Value::Int(1)};
  ResultSet q7 = Run(nodes_[1].get(), "GET BLOCK ID=?", q7_params);
  ASSERT_EQ(q7.num_rows(), 1u);
  EXPECT_EQ(q7.rows[0][0].AsInt(), 1);

  // Aggregates over the same data.
  ResultSet agg = Run(nodes_[0].get(),
                      "SELECT count(*), sum(amount), max(amount) FROM donate");
  EXPECT_EQ(agg.rows[0][0].AsInt(), 12);
  EXPECT_DOUBLE_EQ(agg.rows[0][1].AsDouble(), 10.0 * (1 + 12) * 12 / 2);

  // Thin client audits Q2's one-dimension version against two auxiliaries.
  std::vector<SebdbNode*> fulls;
  for (auto& node : nodes_) fulls.push_back(node.get());
  ThinClient client(fulls);
  ASSERT_TRUE(client.SyncHeaders().ok());
  std::vector<Transaction> audited;
  AuthQueryStats stats;
  ASSERT_TRUE(client
                  .AuthTraceQuery(/*by_sender=*/true, "charity", 3, 2,
                                  &audited, &stats)
                  .ok());
  EXPECT_EQ(audited.size(), q2.num_rows());
}

}  // namespace
}  // namespace sebdb
