// Tests for the off-chain mini relational engine and its connector.
#include <gtest/gtest.h>

#include "offchain/offchain_db.h"

namespace sebdb {
namespace {

void FillDoneeDb(OffchainDb& db) {
  EXPECT_TRUE(db.CreateTable("doneeinfo", {{"donee", ValueType::kString},
                                           {"age", ValueType::kInt64},
                                           {"income", ValueType::kDecimal}})
                  .ok());
  auto insert = [&](const std::string& name, int64_t age, double income) {
    EXPECT_TRUE(db.Insert("doneeinfo",
                          {Value::Str(name), Value::Int(age),
                           Value::Dec(Decimal::FromDouble(income))})
                    .ok());
  };
  insert("tom", 12, 100.5);
  insert("amy", 9, 80.0);
  insert("bob", 15, 120.25);
  insert("amy2", 9, 60.0);
}

TEST(OffchainDbTest, CreateInsertScan) {
  OffchainDb db;
  FillDoneeDb(db);
  OffchainTable* t = db.GetTable("DoneeInfo");  // case-insensitive
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->num_rows(), 4u);
  auto rows = t->Scan([](const OffchainRow& row) {
    return row[1].AsInt() < 13;
  });
  EXPECT_EQ(rows.size(), 3u);
}

TEST(OffchainDbTest, InsertTypeChecking) {
  OffchainDb db;
  FillDoneeDb(db);
  EXPECT_TRUE(db.Insert("doneeinfo", {Value::Int(1), Value::Int(2),
                                      Value::Dec(Decimal::FromInt(1))})
                  .IsInvalidArgument());
  EXPECT_TRUE(db.Insert("doneeinfo", {Value::Str("x")}).IsInvalidArgument());
  EXPECT_TRUE(db.Insert("missing", {}).IsNotFound());
  // NULLs pass the type check.
  EXPECT_TRUE(
      db.Insert("doneeinfo", {Value::Null(), Value::Null(), Value::Null()})
          .ok());
}

TEST(OffchainDbTest, DuplicateTableRejected) {
  OffchainDb db;
  ASSERT_TRUE(db.CreateTable("t", {{"a", ValueType::kInt64}}).ok());
  EXPECT_TRUE(
      db.CreateTable("T", {{"b", ValueType::kInt64}}).IsInvalidArgument());
  EXPECT_TRUE(db.DropTable("t").ok());
  EXPECT_TRUE(db.DropTable("t").IsNotFound());
}

TEST(OffchainTableTest, SortedByWithAndWithoutIndex) {
  OffchainDb db;
  FillDoneeDb(db);
  OffchainTable* t = db.GetTable("doneeinfo");
  std::vector<size_t> order;
  ASSERT_TRUE(t->SortedBy("age", &order).ok());
  ASSERT_EQ(order.size(), 4u);
  ASSERT_TRUE(t->CreateIndex("age").ok());
  EXPECT_TRUE(t->HasIndex("age"));
  std::vector<size_t> indexed_order;
  ASSERT_TRUE(t->SortedBy("age", &indexed_order).ok());
  ASSERT_EQ(indexed_order.size(), order.size());
  for (size_t i = 0; i < order.size(); i++) {
    EXPECT_EQ(t->row(indexed_order[i])[1].CompareTotal(t->row(order[i])[1]),
              0);
  }
}

TEST(OffchainTableTest, MinMaxDistinctLookup) {
  OffchainDb db;
  FillDoneeDb(db);
  OffchainTable* t = db.GetTable("doneeinfo");
  Value min, max;
  ASSERT_TRUE(t->MinMax("age", &min, &max).ok());
  EXPECT_EQ(min.AsInt(), 9);
  EXPECT_EQ(max.AsInt(), 15);

  std::vector<Value> distinct;
  ASSERT_TRUE(t->Distinct("age", &distinct).ok());
  EXPECT_EQ(distinct.size(), 3u);  // 9, 12, 15

  std::vector<size_t> hits;
  ASSERT_TRUE(t->Lookup("age", Value::Int(9), &hits).ok());
  EXPECT_EQ(hits.size(), 2u);
  // Index-backed lookup agrees.
  ASSERT_TRUE(t->CreateIndex("age").ok());
  std::vector<size_t> indexed_hits;
  ASSERT_TRUE(t->Lookup("age", Value::Int(9), &indexed_hits).ok());
  EXPECT_EQ(indexed_hits.size(), 2u);

  EXPECT_TRUE(t->MinMax("missing", &min, &max).IsNotFound());
}

TEST(OffchainTableTest, IndexMaintainedAcrossInserts) {
  OffchainDb db;
  ASSERT_TRUE(db.CreateTable("t", {{"k", ValueType::kInt64}}).ok());
  OffchainTable* t = db.GetTable("t");
  ASSERT_TRUE(t->CreateIndex("k").ok());
  for (int i = 10; i > 0; i--) {
    ASSERT_TRUE(t->Insert({Value::Int(i)}).ok());
  }
  std::vector<size_t> order;
  ASSERT_TRUE(t->SortedBy("k", &order).ok());
  for (size_t i = 1; i < order.size(); i++) {
    EXPECT_LE(t->row(order[i - 1])[0].AsInt(), t->row(order[i])[0].AsInt());
  }
}

TEST(ConnectorTest, AllOperations) {
  OffchainDb db;
  FillDoneeDb(db);
  LocalOffchainConnector connector(&db);

  std::vector<ColumnDef> columns;
  ASSERT_TRUE(connector.TableColumns("doneeinfo", &columns).ok());
  EXPECT_EQ(columns.size(), 3u);
  EXPECT_EQ(columns[0].name, "donee");

  std::vector<OffchainRow> rows;
  ASSERT_TRUE(connector.FetchAll("doneeinfo", &rows).ok());
  EXPECT_EQ(rows.size(), 4u);

  std::vector<OffchainRow> sorted;
  ASSERT_TRUE(connector.FetchSortedBy("doneeinfo", "age", &sorted).ok());
  for (size_t i = 1; i < sorted.size(); i++) {
    EXPECT_LE(sorted[i - 1][1].AsInt(), sorted[i][1].AsInt());
  }

  Value min, max;
  ASSERT_TRUE(connector.MinMax("doneeinfo", "income", &min, &max).ok());
  EXPECT_EQ(min.AsDecimal().ToDouble(), 60.0);

  std::vector<Value> distinct;
  ASSERT_TRUE(connector.Distinct("doneeinfo", "age", &distinct).ok());
  EXPECT_EQ(distinct.size(), 3u);

  EXPECT_TRUE(connector.FetchAll("nope", &rows).IsNotFound());
}

}  // namespace
}  // namespace sebdb
