// MVCC apply equivalence: wave planning unit tests plus randomized
// serial/scheduled equivalence — the same ordered workload must produce
// byte-identical chain state (tip hash, query rows and plans, ALI digests,
// checkpoint files) whether blocks are applied serially or through the
// order-then-execute scheduler with no pool, a 1-thread pool, or a
// 4-thread pool (DESIGN.md §13).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/txn_scheduler.h"
#include "sql/executor.h"
#include "storage/file.h"
#include "tests/test_util.h"

namespace sebdb {
namespace {

using testing_util::MakeTxn;
using testing_util::ScratchDir;

// ---------------------------------------------------------------------------
// Wave planning.

Transaction Insert(const std::string& table, const std::string& key) {
  return MakeTxn(table, "s", 10, {Value::Str(key), Value::Int(1)});
}

Transaction SchemaTxnFor(const std::string& table) {
  Schema schema;
  EXPECT_TRUE(
      Schema::Create(table, {{"k", ValueType::kString}}, &schema).ok());
  Transaction txn = Catalog::MakeSchemaTransaction(schema);
  txn.set_sender("admin");
  txn.set_ts(10);
  txn.set_signature("test-sig");
  return txn;
}

TEST(PlanWavesTest, NonConflictingBlockIsOneWave) {
  std::vector<Transaction> txns;
  for (int i = 0; i < 8; i++) {
    txns.push_back(Insert("t", "k" + std::to_string(i)));
  }
  WavePlan plan = PlanWaves(txns);
  ASSERT_EQ(plan.waves.size(), 1u);
  EXPECT_EQ(plan.waves[0].size(), 8u);
  EXPECT_EQ(plan.conflict_txns, 0u);
  EXPECT_EQ(plan.schema_barriers, 0u);
}

TEST(PlanWavesTest, SameKeyDegradesToOneTxnPerWave) {
  std::vector<Transaction> txns;
  for (int i = 0; i < 6; i++) txns.push_back(Insert("t", "hot"));
  WavePlan plan = PlanWaves(txns);
  ASSERT_EQ(plan.waves.size(), 6u);
  for (uint32_t w = 0; w < 6; w++) {
    ASSERT_EQ(plan.waves[w].size(), 1u);
    EXPECT_EQ(plan.waves[w][0], w);  // original order preserved
  }
  EXPECT_EQ(plan.conflict_txns, 5u);
}

TEST(PlanWavesTest, SameKeyDifferentTablesDoNotConflict) {
  std::vector<Transaction> txns = {Insert("a", "k"), Insert("b", "k")};
  WavePlan plan = PlanWaves(txns);
  ASSERT_EQ(plan.waves.size(), 1u);
  EXPECT_EQ(plan.waves[0].size(), 2u);
}

TEST(PlanWavesTest, SchemaOpIsTableLevelBarrier) {
  // [insert a, insert b, schema a, insert a, insert b]: the schema op
  // serializes behind a's earlier insert and ahead of a's later one, while
  // table b's transactions stay unaffected in wave 0.
  std::vector<Transaction> txns = {Insert("a", "k1"), Insert("b", "k2"),
                                   SchemaTxnFor("a"), Insert("a", "k3"),
                                   Insert("b", "k4")};
  WavePlan plan = PlanWaves(txns);
  ASSERT_EQ(plan.waves.size(), 3u);
  EXPECT_EQ(plan.waves[0], (std::vector<uint32_t>{0, 1, 4}));
  EXPECT_EQ(plan.waves[1], (std::vector<uint32_t>{2}));
  EXPECT_EQ(plan.waves[2], (std::vector<uint32_t>{3}));
  EXPECT_EQ(plan.schema_barriers, 1u);
}

TEST(PlanWavesTest, UndecodableSchemaTxnIsGlobalBarrier) {
  Transaction opaque("__schema", {Value::Int(42)});
  opaque.set_sender("admin");
  opaque.set_ts(10);
  opaque.set_signature("test-sig");
  std::vector<Transaction> txns = {Insert("a", "k1"), std::move(opaque),
                                   Insert("b", "k2")};
  WavePlan plan = PlanWaves(txns);
  ASSERT_EQ(plan.waves.size(), 3u);
  EXPECT_EQ(plan.waves[0], (std::vector<uint32_t>{0}));
  EXPECT_EQ(plan.waves[1], (std::vector<uint32_t>{1}));
  EXPECT_EQ(plan.waves[2], (std::vector<uint32_t>{2}));
}

TEST(PlanWavesTest, WavesPartitionEveryPositionInAscendingOrder) {
  Random rng(42);
  std::vector<Transaction> txns;
  for (int i = 0; i < 200; i++) {
    if (rng.Uniform(20) == 0) {
      txns.push_back(SchemaTxnFor("t" + std::to_string(rng.Uniform(3))));
    } else {
      txns.push_back(Insert("t" + std::to_string(rng.Uniform(3)),
                            "k" + std::to_string(rng.Uniform(10))));
    }
  }
  WavePlan plan = PlanWaves(txns);
  std::vector<int> seen(txns.size(), 0);
  for (const auto& wave : plan.waves) {
    ASSERT_FALSE(wave.empty());
    for (size_t j = 0; j < wave.size(); j++) {
      ASSERT_LT(wave[j], txns.size());
      if (j > 0) {
        ASSERT_LT(wave[j - 1], wave[j]);
      }
      seen[wave[j]]++;
    }
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(PlanWavesTest, SchemaThenInsertsInSameBlockOrderCorrectly) {
  // A table created and populated within one block: the schema op runs in
  // wave 0, the inserts land in wave 1 together (they conflict with the
  // barrier, not with each other).
  std::vector<Transaction> txns = {SchemaTxnFor("late"), Insert("late", "a"),
                                   Insert("late", "b"), Insert("late", "c")};
  WavePlan plan = PlanWaves(txns);
  ASSERT_EQ(plan.waves.size(), 2u);
  EXPECT_EQ(plan.waves[0], (std::vector<uint32_t>{0}));
  EXPECT_EQ(plan.waves[1], (std::vector<uint32_t>{1, 2, 3}));
}

// ---------------------------------------------------------------------------
// Randomized serial/scheduled equivalence across pool sizes.

// One chain variant: a scratch dir, its own pool (when threaded) and chain.
struct Variant {
  std::string name;
  std::unique_ptr<ScratchDir> dir;
  std::unique_ptr<ThreadPool> pool;
  std::unique_ptr<ChainManager> chain;
  std::unique_ptr<Executor> executor;
};

Variant MakeVariant(const std::string& name, bool serial_apply,
                    int pool_threads, uint32_t execute_cost_micros = 0) {
  Variant v;
  v.name = name;
  v.dir = std::make_unique<ScratchDir>("mvcc_" + name);
  ChainOptions options;
  options.verify_signatures = false;
  options.store.segment_size = 8 << 10;  // tiny: forces many segments
  options.serial_apply = serial_apply;
  options.execute_cost_micros = execute_cost_micros;
  if (pool_threads > 0) {
    v.pool = std::make_unique<ThreadPool>(pool_threads);
    options.pool = v.pool.get();
  }
  v.chain = std::make_unique<ChainManager>("mvcc-" + name, nullptr);
  EXPECT_TRUE(v.chain->Open(options, v.dir->path()).ok());
  return v;
}

// Deterministic mixed workload: conflicting and non-conflicting inserts,
// mid-chain schema re-syncs, a table created and populated in one block,
// and a user index created mid-chain so later blocks exercise the user
// target in the scheduled merge phase.
void BuildWorkload(ChainManager* chain) {
  Timestamp ts = 0;
  auto next_ts = [&ts] { return ts += 10; };
  auto append = [&](std::vector<Transaction> txns) {
    Timestamp block_ts = 0;
    for (const auto& txn : txns) block_ts = std::max(block_ts, txn.ts());
    uint64_t seq = chain->height() - 1;  // genesis at height 0
    ASSERT_TRUE(
        chain->AppendBatch(seq, std::move(txns), block_ts, "sig").ok());
  };

  Schema donate, acct;
  ASSERT_TRUE(Schema::Create("donate",
                             {{"donor", ValueType::kString},
                              {"project", ValueType::kString},
                              {"amount", ValueType::kInt64}},
                             &donate)
                  .ok());
  ASSERT_TRUE(Schema::Create(
                  "acct",
                  {{"id", ValueType::kString}, {"v", ValueType::kInt64}},
                  &acct)
                  .ok());
  std::vector<Transaction> schema_txns;
  for (const Schema* schema : {&donate, &acct}) {
    Transaction txn = Catalog::MakeSchemaTransaction(*schema);
    txn.set_sender("admin");
    txn.set_ts(next_ts());
    txn.set_signature("test-sig");
    schema_txns.push_back(std::move(txn));
  }
  append(std::move(schema_txns));

  Random rng(20260809);
  for (int b = 0; b < 30; b++) {
    std::vector<Transaction> txns;
    // Mid-chain schema re-sync (idempotent): exercises table barriers
    // between inserts of the same block.
    if (b % 7 == 3) {
      Transaction txn = Catalog::MakeSchemaTransaction(donate);
      txn.set_sender("admin");
      txn.set_ts(next_ts());
      txn.set_signature("test-sig");
      txns.push_back(std::move(txn));
    }
    // Odd blocks draw first-column keys from a tiny pool (heavy intra-block
    // conflicts); even blocks from a wide one (mostly conflict-free).
    uint64_t key_space = (b % 2 == 1) ? 3 : 1000;
    int rows = 4 + static_cast<int>(rng.Uniform(9));
    for (int i = 0; i < rows; i++) {
      if (rng.Uniform(3) == 0) {
        txns.push_back(
            MakeTxn("acct", "org" + std::to_string(rng.Uniform(4)), next_ts(),
                    {Value::Str("a" + std::to_string(rng.Uniform(key_space))),
                     Value::Int(rng.UniformRange(0, 500))}));
      } else {
        txns.push_back(MakeTxn(
            "donate", "donor" + std::to_string(rng.Uniform(6)), next_ts(),
            {Value::Str("d" + std::to_string(rng.Uniform(key_space))),
             Value::Str("proj" + std::to_string(rng.Uniform(5))),
             Value::Int(rng.UniformRange(0, 500))}));
      }
    }
    append(std::move(txns));

    if (b == 14) {
      // New table created and populated within a single block.
      Schema late;
      ASSERT_TRUE(Schema::Create("late",
                                 {{"who", ValueType::kString},
                                  {"score", ValueType::kInt64}},
                                 &late)
                      .ok());
      Transaction schema_txn = Catalog::MakeSchemaTransaction(late);
      schema_txn.set_sender("admin");
      schema_txn.set_ts(next_ts());
      schema_txn.set_signature("test-sig");
      std::vector<Transaction> block;
      block.push_back(std::move(schema_txn));
      for (int i = 0; i < 3; i++) {
        block.push_back(
            MakeTxn("late", "admin", next_ts(),
                    {Value::Str("w" + std::to_string(i)), Value::Int(i)}));
      }
      append(std::move(block));
      // User indexes created mid-chain: the remaining blocks flow through
      // the scheduled merge with user targets live (continuous histogram
      // on amount, discrete value-bitmaps on project).
      ASSERT_TRUE(chain->indexes()
                      ->CreateLayeredIndex("donate", "amount",
                                           Schema::kNumSystemColumns + 2,
                                           /*discrete=*/false)
                      .ok());
      ASSERT_TRUE(chain->indexes()
                      ->CreateLayeredIndex("donate", "project",
                                           Schema::kNumSystemColumns + 1,
                                           /*discrete=*/true)
                      .ok());
    }
  }
}

std::vector<std::string> Rendered(const ResultSet& result) {
  std::vector<std::string> out;
  for (const auto& row : result.rows) {
    std::string line;
    for (const auto& v : row) line += v.ToString() + "|";
    out.push_back(std::move(line));
  }
  return out;
}

std::string AliDigest(AuthenticatedLayeredIndex* ali, const std::string& key) {
  Value v = Value::Str(key);
  Hash256 digest;
  EXPECT_TRUE(
      ali->ComputeDigest(&v, &v, nullptr, ali->num_blocks(), &digest).ok());
  return digest.ToHex();
}

// Every regular file under `dir` (recursing one level into subdirectories),
// keyed by relative name.
std::map<std::string, std::string> DirBytes(const std::string& dir) {
  std::map<std::string, std::string> out;
  std::vector<std::string> names;
  if (!ListDir(dir, &names).ok()) return out;
  for (const auto& name : names) {
    const std::string path = dir + "/" + name;
    RandomAccessFile file;
    if (file.Open(path).ok()) {
      std::string bytes;
      if (file.size() > 0) {
        EXPECT_TRUE(file.Read(0, file.size(), &bytes).ok()) << path;
      }
      out[name] = std::move(bytes);
    } else {
      for (auto& [sub, bytes] : DirBytes(path)) {
        out[name + "/" + sub] = std::move(bytes);
      }
    }
  }
  return out;
}

TEST(MvccEquivalenceTest, SerialAndScheduledStateIsByteIdentical) {
  std::vector<Variant> variants;
  variants.push_back(MakeVariant("serial", /*serial_apply=*/true, 0));
  variants.push_back(MakeVariant("nopool", /*serial_apply=*/false, 0));
  variants.push_back(MakeVariant("pool1", /*serial_apply=*/false, 1));
  variants.push_back(MakeVariant("pool4", /*serial_apply=*/false, 4));

  for (auto& v : variants) {
    BuildWorkload(v.chain.get());
    v.executor = std::make_unique<Executor>(v.chain->store(),
                                            v.chain->indexes(),
                                            v.chain->catalog(), nullptr);
  }

  const Variant& base = variants[0];
  for (size_t i = 1; i < variants.size(); i++) {
    const Variant& other = variants[i];
    SCOPED_TRACE(other.name);
    EXPECT_EQ(base.chain->height(), other.chain->height());
    EXPECT_EQ(base.chain->tip_hash().ToHex(), other.chain->tip_hash().ToHex());
    EXPECT_EQ(base.chain->next_tid(), other.chain->next_tid());
  }

  // Query results and plans across every access path the planner picks.
  const char* queries[] = {
      "SELECT * FROM donate WHERE amount >= 100 AND amount <= 300",
      "SELECT * FROM donate WHERE project = 'proj2'",
      "TRACE OPERATOR = 'donor3'",
      "TRACE OPERATION = 'acct'",
      "SELECT * FROM acct WHERE v >= 250",
      "SELECT * FROM late",
  };
  for (const char* sql : queries) {
    ExecOptions options;
    ResultSet expected;
    ASSERT_TRUE(variants[0].executor->ExecuteSql(sql, options, &expected).ok())
        << sql;
    for (size_t i = 1; i < variants.size(); i++) {
      ResultSet got;
      ASSERT_TRUE(variants[i].executor->ExecuteSql(sql, options, &got).ok())
          << variants[i].name << ": " << sql;
      EXPECT_EQ(expected.plan, got.plan) << variants[i].name << ": " << sql;
      EXPECT_EQ(Rendered(expected), Rendered(got))
          << variants[i].name << ": " << sql;
    }
  }

  // ALI digests (system ALIs feed the authenticated trace queries).
  for (size_t i = 1; i < variants.size(); i++) {
    const Variant& other = variants[i];
    SCOPED_TRACE(other.name);
    for (int s = 0; s < 6; s++) {
      const std::string sender = "donor" + std::to_string(s);
      EXPECT_EQ(AliDigest(base.chain->indexes()->senid_ali(), sender),
                AliDigest(other.chain->indexes()->senid_ali(), sender));
    }
    for (const char* table : {"donate", "acct", "late"}) {
      EXPECT_EQ(AliDigest(base.chain->indexes()->tname_ali(), table),
                AliDigest(other.chain->indexes()->tname_ali(), table));
    }
  }

  // Checkpoints must serialize to identical bytes: same page files, same
  // manifest, regardless of how blocks were applied.
  for (auto& v : variants) {
    ASSERT_TRUE(v.chain->WriteCheckpoint().ok()) << v.name;
  }
  const auto base_files = DirBytes(base.dir->path() + "/checkpoints");
  EXPECT_FALSE(base_files.empty());
  for (size_t i = 1; i < variants.size(); i++) {
    const auto other_files = DirBytes(variants[i].dir->path() + "/checkpoints");
    ASSERT_EQ(base_files.size(), other_files.size()) << variants[i].name;
    for (const auto& [name, bytes] : base_files) {
      auto it = other_files.find(name);
      ASSERT_NE(it, other_files.end()) << variants[i].name << ": " << name;
      EXPECT_EQ(bytes, it->second) << variants[i].name << ": " << name;
    }
  }

  // Scheduler surfaced the conflict structure: the threaded variants saw
  // both multi-wave (conflicting) and single-wave (conflict-free) blocks.
  for (size_t i = 1; i < variants.size(); i++) {
    const TxnSchedulerStats stats = variants[i].chain->apply_stats();
    SCOPED_TRACE(variants[i].name);
    EXPECT_GT(stats.blocks, 0u);
    EXPECT_GT(stats.txns, 0u);
    EXPECT_GE(stats.waves, stats.blocks);
    EXPECT_GT(stats.conflict_txns, 0u);
    EXPECT_GT(stats.schema_barriers, 0u);
    EXPECT_GT(stats.single_wave_blocks, 0u);
    EXPECT_GT(stats.max_waves_in_block, 1u);
  }
}

// Simulated execution cost must not change results, only timing — run the
// same workload with a nonzero per-txn cost and compare the tip.
TEST(MvccEquivalenceTest, ExecuteCostDoesNotChangeState) {
  Variant plain = MakeVariant("cost0", /*serial_apply=*/false, 2);
  Variant costed = MakeVariant("cost5", /*serial_apply=*/false, 2,
                               /*execute_cost_micros=*/5);
  BuildWorkload(plain.chain.get());
  BuildWorkload(costed.chain.get());
  EXPECT_EQ(plain.chain->height(), costed.chain->height());
  EXPECT_EQ(plain.chain->tip_hash().ToHex(), costed.chain->tip_hash().ToHex());
}

// Replay (ChainManager::Open over an existing dir) routes through the same
// scheduler: reopen the serially-built chain with a pool and compare tips.
TEST(MvccEquivalenceTest, ScheduledReplayMatchesSerialBuild) {
  ScratchDir dir("mvcc_replay");
  ChainOptions serial;
  serial.verify_signatures = false;
  serial.store.segment_size = 8 << 10;
  serial.serial_apply = true;
  std::string tip;
  uint64_t height = 0;
  {
    ChainManager chain("mvcc-build", nullptr);
    ASSERT_TRUE(chain.Open(serial, dir.path()).ok());
    BuildWorkload(&chain);
    tip = chain.tip_hash().ToHex();
    height = chain.height();
  }
  ThreadPool pool(4);
  ChainOptions scheduled;
  scheduled.verify_signatures = false;
  scheduled.store.segment_size = 8 << 10;
  scheduled.pool = &pool;
  ChainManager chain("mvcc-replay", nullptr);
  ASSERT_TRUE(chain.Open(scheduled, dir.path()).ok());
  EXPECT_EQ(chain.height(), height);
  EXPECT_EQ(chain.tip_hash().ToHex(), tip);
}

}  // namespace
}  // namespace sebdb
