// Unit coverage of the persistence subsystem beneath index checkpoints:
// page framing (CRC / magic / size validation), the BufferManager (pin,
// fault, LRU eviction, dirty retention, flush, stats), the disk-resident
// bulk-loaded B+-tree against an in-memory reference, and the
// CheckpointManager's shadow-paging manifest protocol (publish, torn-tail
// truncation, fallback to the previous usable record, orphan GC).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/env.h"
#include "storage/buffer_manager.h"
#include "storage/checkpoint.h"
#include "storage/disk_bptree.h"
#include "storage/page.h"
#include "tests/test_util.h"

namespace sebdb {
namespace {

using testing_util::ScratchDir;

// --- page framing ---

TEST(PageTest, RoundTrip) {
  std::string payload = "hello page payload";
  std::string image;
  ASSERT_TRUE(EncodePage(PageType::kBlob, payload, &image).ok());
  ASSERT_EQ(image.size(), kPageSize);

  PageType type;
  Slice got;
  ASSERT_TRUE(DecodePage(image, &type, &got).ok());
  EXPECT_EQ(type, PageType::kBlob);
  EXPECT_EQ(got.ToString(), payload);
}

TEST(PageTest, EmptyAndMaxPayload) {
  for (size_t len : {size_t{0}, kMaxPagePayload}) {
    std::string payload(len, 'x');
    std::string image;
    ASSERT_TRUE(EncodePage(PageType::kBTreeLeaf, payload, &image).ok());
    PageType type;
    Slice got;
    ASSERT_TRUE(DecodePage(image, &type, &got).ok());
    EXPECT_EQ(got.size(), len);
  }
  std::string too_big(kMaxPagePayload + 1, 'x');
  std::string image;
  EXPECT_FALSE(EncodePage(PageType::kBlob, too_big, &image).ok());
}

TEST(PageTest, RejectsWrongSizeAndCorruption) {
  std::string image;
  ASSERT_TRUE(EncodePage(PageType::kBlob, "payload", &image).ok());
  PageType type;
  Slice payload;

  EXPECT_FALSE(DecodePage(Slice(image.data(), kPageSize - 1), &type, &payload)
                   .ok());
  EXPECT_FALSE(DecodePage(Slice(), &type, &payload).ok());

  // Any single flipped byte — header or payload — must fail validation.
  for (size_t pos : {size_t{0}, size_t{5}, size_t{9}, kPageHeaderSize + 3}) {
    std::string bad = image;
    bad[pos] ^= 0x40;
    EXPECT_FALSE(DecodePage(bad, &type, &payload).ok()) << "byte " << pos;
  }
}

// --- buffer manager ---

BufferManager MakePool(uint64_t capacity) {
  BufferPoolOptions options;
  options.capacity_bytes = capacity;
  return BufferManager(options);
}

TEST(BufferManagerTest, AppendFlushReopenRead) {
  ScratchDir dir("bm_roundtrip");
  const std::string path = dir.path() + "/pages";
  constexpr int kPages = 20;

  {
    BufferManager pool = MakePool(1 << 20);
    BufferManager::FileId file;
    ASSERT_TRUE(pool.CreateFile(path, &file).ok());
    for (int i = 0; i < kPages; i++) {
      PageId pid;
      ASSERT_TRUE(pool.AppendPage(file, PageType::kBlob,
                                  "page " + std::to_string(i), &pid)
                      .ok());
      ASSERT_EQ(pid, static_cast<PageId>(i));
      // Appended pages are readable before any flush.
      BufferManager::PageRef ref;
      ASSERT_TRUE(pool.Pin(file, pid, &ref).ok());
      EXPECT_EQ(ref.payload().ToString(), "page " + std::to_string(i));
    }
    ASSERT_TRUE(pool.Flush(file).ok());
    EXPECT_EQ(pool.file_pages(file), static_cast<uint64_t>(kPages));
    EXPECT_EQ(pool.file_size(file), kPages * kPageSize);
  }

  // Fresh pool, read-only reopen: every page faults from disk and validates.
  BufferManager pool = MakePool(1 << 20);
  BufferManager::FileId file;
  ASSERT_TRUE(pool.OpenFile(path, &file).ok());
  ASSERT_EQ(pool.file_pages(file), static_cast<uint64_t>(kPages));
  for (int i = 0; i < kPages; i++) {
    BufferManager::PageRef ref;
    ASSERT_TRUE(pool.Pin(file, i, &ref).ok());
    EXPECT_EQ(ref.type(), PageType::kBlob);
    EXPECT_EQ(ref.payload().ToString(), "page " + std::to_string(i));
  }
  const BufferManager::Stats stats = pool.stats();
  EXPECT_EQ(stats.misses, static_cast<uint64_t>(kPages));
  EXPECT_EQ(stats.files, 1u);

  // Second pass: all hits.
  for (int i = 0; i < kPages; i++) {
    BufferManager::PageRef ref;
    ASSERT_TRUE(pool.Pin(file, i, &ref).ok());
  }
  EXPECT_EQ(pool.stats().hits, static_cast<uint64_t>(kPages));
  EXPECT_EQ(pool.stats().misses, static_cast<uint64_t>(kPages));
}

TEST(BufferManagerTest, EvictsUnderPressureButNotPinned) {
  ScratchDir dir("bm_evict");
  const std::string path = dir.path() + "/pages";
  constexpr int kPages = 16;
  {
    BufferManager pool = MakePool(1 << 20);
    BufferManager::FileId file;
    ASSERT_TRUE(pool.CreateFile(path, &file).ok());
    for (int i = 0; i < kPages; i++) {
      PageId pid;
      ASSERT_TRUE(
          pool.AppendPage(file, PageType::kBlob, std::to_string(i), &pid).ok());
    }
    ASSERT_TRUE(pool.Flush(file).ok());
  }

  // Pool holds 4 frames; touching 16 pages must evict and stay within budget.
  BufferManager pool = MakePool(4 * kPageSize);
  BufferManager::FileId file;
  ASSERT_TRUE(pool.OpenFile(path, &file).ok());
  for (int round = 0; round < 2; round++) {
    for (int i = 0; i < kPages; i++) {
      BufferManager::PageRef ref;
      ASSERT_TRUE(pool.Pin(file, i, &ref).ok());
      EXPECT_EQ(ref.payload().ToString(), std::to_string(i));
    }
  }
  BufferManager::Stats stats = pool.stats();
  EXPECT_LE(stats.usage, 4 * kPageSize);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.misses, static_cast<uint64_t>(kPages));  // refaulted

  // A pinned page survives any amount of pressure; its view stays valid.
  BufferManager::PageRef pinned;
  ASSERT_TRUE(pool.Pin(file, 7, &pinned).ok());
  for (int i = 0; i < kPages; i++) {
    if (i == 7) continue;
    BufferManager::PageRef ref;
    ASSERT_TRUE(pool.Pin(file, i, &ref).ok());
  }
  EXPECT_EQ(pinned.payload().ToString(), "7");
  EXPECT_EQ(pool.stats().pinned, 1u);
  pinned.Release();
  EXPECT_EQ(pool.stats().pinned, 0u);
}

TEST(BufferManagerTest, RejectsTornFileAndCorruptPage) {
  ScratchDir dir("bm_torn");
  Env* env = Env::Default();

  // A file that is not a whole number of pages is a torn checkpoint build.
  const std::string torn = dir.path() + "/torn";
  {
    std::unique_ptr<WritableFile> f;
    ASSERT_TRUE(env->NewWritableFile(torn, &f).ok());
    ASSERT_TRUE(f->Append(std::string(kPageSize + 100, 'x')).ok());
    ASSERT_TRUE(f->Close().ok());
  }
  BufferManager pool = MakePool(1 << 20);
  BufferManager::FileId file;
  EXPECT_FALSE(pool.OpenFile(torn, &file).ok());

  // A whole-page file with garbage bytes opens, but the fault fails CRC.
  const std::string garbage = dir.path() + "/garbage";
  {
    std::unique_ptr<WritableFile> f;
    ASSERT_TRUE(env->NewWritableFile(garbage, &f).ok());
    ASSERT_TRUE(f->Append(std::string(kPageSize, 'z')).ok());
    ASSERT_TRUE(f->Close().ok());
  }
  ASSERT_TRUE(pool.OpenFile(garbage, &file).ok());
  BufferManager::PageRef ref;
  EXPECT_FALSE(pool.Pin(file, 0, &ref).ok());

  // CreateFile refuses to silently reuse frames of a dropped file: drop,
  // recreate, and the new (empty) file has no pages.
  const std::string fresh = dir.path() + "/fresh";
  BufferManager::FileId id;
  ASSERT_TRUE(pool.CreateFile(fresh, &id).ok());
  PageId pid;
  ASSERT_TRUE(pool.AppendPage(id, PageType::kBlob, "x", &pid).ok());
  pool.DropFile(id);
  ASSERT_TRUE(pool.CreateFile(fresh, &id).ok());
  EXPECT_EQ(pool.file_pages(id), 0u);
}

// --- disk B+-tree ---

struct U64Codec {
  static void EncodeKey(std::string* dst, const uint64_t& k) {
    PutVarint64(dst, k);
  }
  static bool DecodeKey(Slice* in, uint64_t* k) { return GetVarint64(in, k); }
  static void EncodeVal(std::string* dst, const std::string& v) {
    PutLengthPrefixed(dst, v);
  }
  static bool DecodeVal(Slice* in, std::string* v) {
    Slice s;
    if (!GetLengthPrefixed(in, &s)) return false;
    *v = s.ToString();
    return true;
  }
};

using U64Tree = DiskBpTree<uint64_t, std::string, U64Codec>;
using U64Builder = DiskBpTreeBuilder<uint64_t, std::string, U64Codec>;

TEST(DiskBpTreeTest, MatchesInMemoryReference) {
  ScratchDir dir("tree_ref");
  BufferManager pool = MakePool(1 << 20);
  BufferManager::FileId file;
  ASSERT_TRUE(pool.CreateFile(dir.path() + "/tree", &file).ok());

  // Enough sorted entries (with padding values) to force several leaves and
  // at least one internal level.
  std::map<uint64_t, std::string> reference;
  U64Builder builder(&pool, file);
  for (uint64_t k = 0; k < 5000; k += 3) {
    std::string v = "value-" + std::to_string(k) + std::string(32, 'p');
    reference[k] = v;
    ASSERT_TRUE(builder.Add(k, v).ok());
  }
  U64Tree::Ref ref;
  ASSERT_TRUE(builder.Finish(&ref).ok());
  ASSERT_TRUE(pool.Flush(file).ok());
  ASSERT_EQ(ref.entries, reference.size());
  ASSERT_NE(ref.root, kInvalidPageId);

  U64Tree tree(&pool, ref);
  // Full scan in key order.
  auto expect = reference.begin();
  for (auto it = tree.Begin(); it.Valid(); it.Next(), ++expect) {
    ASSERT_NE(expect, reference.end());
    EXPECT_EQ(it.key(), expect->first);
    EXPECT_EQ(it.value(), expect->second);
  }
  EXPECT_EQ(expect, reference.end());

  // Point and predicate seeks at hits, misses, below-min and past-max.
  for (uint64_t target : {0u, 1u, 2u, 3u, 2499u, 2500u, 4998u, 4999u, 9999u}) {
    auto it = tree.SeekGE(target);
    auto want = reference.lower_bound(target);
    if (want == reference.end()) {
      EXPECT_FALSE(it.Valid()) << "target " << target;
    } else {
      ASSERT_TRUE(it.Valid()) << "target " << target;
      EXPECT_EQ(it.key(), want->first);
    }
    ASSERT_TRUE(it.status().ok());
  }

  // Range scans against the reference.
  std::mt19937_64 rng(42);
  for (int i = 0; i < 50; i++) {
    uint64_t lo = rng() % 5200;
    uint64_t hi = lo + rng() % 600;
    std::vector<std::string> got;
    Status s;
    tree.RangeScan(lo, hi, &got, &s);
    ASSERT_TRUE(s.ok());
    std::vector<std::string> want;
    for (auto it = reference.lower_bound(lo);
         it != reference.end() && it->first <= hi; ++it) {
      want.push_back(it->second);
    }
    EXPECT_EQ(got, want) << "range [" << lo << ", " << hi << "]";
  }
}

TEST(DiskBpTreeTest, MultipleTreesShareAFileAndSurviveTinyPool) {
  ScratchDir dir("tree_shared");
  const std::string path = dir.path() + "/trees";
  std::vector<U64Tree::Ref> refs;
  {
    BufferManager pool = MakePool(1 << 20);
    BufferManager::FileId file;
    ASSERT_TRUE(pool.CreateFile(path, &file).ok());
    for (uint64_t t = 0; t < 5; t++) {
      U64Builder builder(&pool, file);
      for (uint64_t k = 0; k < 300; k++) {
        ASSERT_TRUE(
            builder.Add(k, std::to_string(t * 1000 + k) + std::string(16, 'v'))
                .ok());
      }
      U64Tree::Ref ref;
      ASSERT_TRUE(builder.Finish(&ref).ok());
      refs.push_back(ref);
    }
    // An empty tree is a valid ref with no pages.
    U64Builder empty(&pool, file);
    U64Tree::Ref eref;
    ASSERT_TRUE(empty.Finish(&eref).ok());
    EXPECT_EQ(eref.root, kInvalidPageId);
    refs.push_back(eref);
    ASSERT_TRUE(pool.Flush(file).ok());
  }

  // Reopen through a 2-frame pool: every step of every descent may refault.
  BufferManager pool = MakePool(2 * kPageSize);
  BufferManager::FileId file;
  ASSERT_TRUE(pool.OpenFile(path, &file).ok());
  for (uint64_t t = 0; t < 5; t++) {
    U64Tree::Ref ref = refs[t];
    ref.file = file;
    U64Tree tree(&pool, ref);
    uint64_t count = 0;
    for (auto it = tree.Begin(); it.Valid(); it.Next()) {
      ASSERT_EQ(it.key(), count);
      ASSERT_EQ(it.value(),
                std::to_string(t * 1000 + count) + std::string(16, 'v'));
      count++;
    }
    EXPECT_EQ(count, 300u);
  }
  U64Tree::Ref eref = refs[5];
  eref.file = file;
  U64Tree empty_tree(&pool, eref);
  EXPECT_FALSE(empty_tree.Begin().Valid());
  EXPECT_LE(pool.stats().usage, 2 * kPageSize);
}

// --- checkpoint manifest protocol ---

// Writes a valid page file of `pages` blob pages directly through a pool.
void WritePageFile(Env* env, const std::string& path, int pages) {
  BufferPoolOptions options;
  options.env = env;
  BufferManager pool(options);
  BufferManager::FileId file;
  ASSERT_TRUE(pool.CreateFile(path, &file).ok());
  for (int i = 0; i < pages; i++) {
    PageId pid;
    ASSERT_TRUE(
        pool.AppendPage(file, PageType::kBlob, std::to_string(i), &pid).ok());
  }
  ASSERT_TRUE(pool.Flush(file).ok());
}

TEST(CheckpointManagerTest, PublishAndRecoverLatest) {
  ScratchDir dir("ckpt_publish");
  Env* env = Env::Default();
  const std::string cdir = dir.path() + "/checkpoints";

  {
    std::unique_ptr<CheckpointManager> mgr;
    ASSERT_TRUE(CheckpointManager::Open(env, cdir, &mgr).ok());
    EXPECT_EQ(mgr->latest(), nullptr);
    EXPECT_EQ(mgr->next_id(), 1u);

    CheckpointRecord rec;
    rec.id = mgr->next_id();
    rec.height = 10;
    WritePageFile(env, mgr->FilePath("ckpt_1_a"), 2);
    rec.files.push_back({"ckpt_1_a", 2 * kPageSize});
    ASSERT_TRUE(mgr->Publish(rec).ok());
    ASSERT_NE(mgr->latest(), nullptr);
    EXPECT_EQ(mgr->latest()->height, 10u);

    // A second checkpoint supersedes the first; its unreferenced file goes.
    CheckpointRecord rec2;
    rec2.id = mgr->next_id();
    EXPECT_EQ(rec2.id, 2u);
    rec2.height = 20;
    WritePageFile(env, mgr->FilePath("ckpt_2_a"), 3);
    rec2.files.push_back({"ckpt_2_a", 3 * kPageSize});
    ASSERT_TRUE(mgr->Publish(rec2).ok());
    uint64_t size;
    EXPECT_FALSE(env->FileSize(cdir + "/ckpt_1_a", &size).ok());
  }

  // Reopen: the published record is the recovery point.
  std::unique_ptr<CheckpointManager> mgr;
  ASSERT_TRUE(CheckpointManager::Open(env, cdir, &mgr).ok());
  ASSERT_NE(mgr->latest(), nullptr);
  EXPECT_EQ(mgr->latest()->id, 2u);
  EXPECT_EQ(mgr->latest()->height, 20u);
  EXPECT_EQ(mgr->next_id(), 3u);
}

TEST(CheckpointManagerTest, TornManifestTailFallsBack) {
  ScratchDir dir("ckpt_torn");
  Env* env = Env::Default();
  const std::string cdir = dir.path() + "/checkpoints";
  {
    std::unique_ptr<CheckpointManager> mgr;
    ASSERT_TRUE(CheckpointManager::Open(env, cdir, &mgr).ok());
    CheckpointRecord rec;
    rec.id = 1;
    rec.height = 10;
    WritePageFile(env, mgr->FilePath("ckpt_1_a"), 1);
    rec.files.push_back({"ckpt_1_a", kPageSize});
    ASSERT_TRUE(mgr->Publish(rec).ok());
    // Checkpoints are incremental: record 2 references record 1's delta
    // file plus its own (which is what keeps the older record usable as a
    // fallback — files only a superseded record needs are GC'd at Publish).
    CheckpointRecord rec2;
    rec2.id = 2;
    rec2.height = 20;
    rec2.files.push_back({"ckpt_1_a", kPageSize});
    WritePageFile(env, mgr->FilePath("ckpt_2_a"), 1);
    rec2.files.push_back({"ckpt_2_a", kPageSize});
    ASSERT_TRUE(mgr->Publish(rec2).ok());
  }

  // Tear the manifest mid-record-2: recovery truncates the tail and falls
  // back to record 1; record 2's now-orphaned file is garbage-collected.
  uint64_t manifest_size;
  ASSERT_TRUE(env->FileSize(cdir + "/MANIFEST", &manifest_size).ok());
  ASSERT_TRUE(env->TruncateFile(cdir + "/MANIFEST", manifest_size - 3).ok());

  std::unique_ptr<CheckpointManager> mgr;
  ASSERT_TRUE(CheckpointManager::Open(env, cdir, &mgr).ok());
  EXPECT_TRUE(mgr->manifest_truncated());
  ASSERT_NE(mgr->latest(), nullptr);
  EXPECT_EQ(mgr->latest()->id, 1u);
  uint64_t size;
  EXPECT_TRUE(env->FileSize(cdir + "/ckpt_1_a", &size).ok());
  EXPECT_FALSE(env->FileSize(cdir + "/ckpt_2_a", &size).ok());
}

TEST(CheckpointManagerTest, MissingOrResizedFileInvalidatesRecord) {
  ScratchDir dir("ckpt_missing");
  Env* env = Env::Default();
  const std::string cdir = dir.path() + "/checkpoints";
  {
    std::unique_ptr<CheckpointManager> mgr;
    ASSERT_TRUE(CheckpointManager::Open(env, cdir, &mgr).ok());
    CheckpointRecord rec;
    rec.id = 1;
    rec.height = 10;
    WritePageFile(env, mgr->FilePath("ckpt_1_a"), 2);
    rec.files.push_back({"ckpt_1_a", 2 * kPageSize});
    ASSERT_TRUE(mgr->Publish(rec).ok());
    // Record 2 claims a size its file never reached (crash before the page
    // file finished, manifest record somehow survived — the belt to the
    // write-files-first suspenders). It shares record 1's file, as real
    // incremental checkpoints do, so the fallback stays usable.
    CheckpointRecord rec2;
    rec2.id = 2;
    rec2.height = 20;
    rec2.files.push_back({"ckpt_1_a", 2 * kPageSize});
    WritePageFile(env, mgr->FilePath("ckpt_2_a"), 1);
    rec2.files.push_back({"ckpt_2_a", 5 * kPageSize});
    ASSERT_TRUE(mgr->Publish(rec2).ok());
  }
  std::unique_ptr<CheckpointManager> mgr;
  ASSERT_TRUE(CheckpointManager::Open(env, cdir, &mgr).ok());
  ASSERT_NE(mgr->latest(), nullptr);
  EXPECT_EQ(mgr->latest()->id, 1u);
  // Ids never go backwards even when the newest record is unusable.
  EXPECT_EQ(mgr->next_id(), 3u);
}

TEST(CheckpointManagerTest, OrphanedFilesAreRemovedAtOpen) {
  ScratchDir dir("ckpt_orphan");
  Env* env = Env::Default();
  const std::string cdir = dir.path() + "/checkpoints";
  {
    std::unique_ptr<CheckpointManager> mgr;
    ASSERT_TRUE(CheckpointManager::Open(env, cdir, &mgr).ok());
    CheckpointRecord rec;
    rec.id = 1;
    rec.height = 5;
    WritePageFile(env, mgr->FilePath("ckpt_1_a"), 1);
    rec.files.push_back({"ckpt_1_a", kPageSize});
    ASSERT_TRUE(mgr->Publish(rec).ok());
    // A crashed build leaves page files no record references.
    WritePageFile(env, mgr->FilePath("ckpt_2_partial"), 2);
  }
  std::unique_ptr<CheckpointManager> mgr;
  ASSERT_TRUE(CheckpointManager::Open(env, cdir, &mgr).ok());
  uint64_t size;
  EXPECT_TRUE(env->FileSize(cdir + "/ckpt_1_a", &size).ok());
  EXPECT_FALSE(env->FileSize(cdir + "/ckpt_2_partial", &size).ok());
}

TEST(CheckpointManagerTest, ManifestRecordCodecRoundTrip) {
  CheckpointRecord rec;
  rec.id = 42;
  rec.height = 12345;
  rec.files.push_back({"ckpt_42_bidx", 8 * kPageSize});
  rec.files.push_back({"ckpt_42_meta", kPageSize});
  std::string enc;
  CheckpointManager::EncodeManifestRecord(rec, &enc);

  Slice in(enc);
  CheckpointRecord got;
  ASSERT_TRUE(CheckpointManager::DecodeManifestRecord(&in, &got));
  EXPECT_EQ(got.id, rec.id);
  EXPECT_EQ(got.height, rec.height);
  ASSERT_EQ(got.files.size(), 2u);
  EXPECT_EQ(got.files[0].name, "ckpt_42_bidx");
  EXPECT_EQ(got.files[1].size, kPageSize);

  // Every truncation of the payload must fail cleanly.
  for (size_t len = 0; len < enc.size(); len++) {
    Slice part(enc.data(), len);
    CheckpointRecord ignored;
    EXPECT_FALSE(CheckpointManager::DecodeManifestRecord(&part, &ignored))
        << "length " << len;
  }
}

TEST(CheckpointManagerTest, BlobFileRoundTrip) {
  ScratchDir dir("ckpt_blob");
  Env* env = Env::Default();
  // Empty, sub-page, exactly one page of payload, and multi-page blobs.
  const size_t sizes[] = {0, 100, kMaxPagePayload, 3 * kMaxPagePayload + 17};
  for (size_t n : sizes) {
    std::string bytes;
    bytes.reserve(n);
    for (size_t i = 0; i < n; i++) bytes.push_back(static_cast<char>(i * 31));
    const std::string path =
        dir.path() + "/blob_" + std::to_string(n);
    BufferPoolOptions options;
    options.env = env;
    BufferManager pool(options);
    BufferManager::FileId file;
    ASSERT_TRUE(pool.CreateFile(path, &file).ok());
    ASSERT_TRUE(CheckpointManager::WriteBlobFile(&pool, file, bytes).ok());
    ASSERT_TRUE(pool.Flush(file).ok());

    std::string got;
    ASSERT_TRUE(CheckpointManager::ReadBlobFile(env, path, &got).ok());
    EXPECT_EQ(got, bytes) << "blob size " << n;
  }
}

TEST(CheckpointManagerTest, ZeroRunCodecRoundTrip) {
  // Empty, all-literal, all-zero, zero runs at head/middle/tail, runs too
  // short to encode (< 4 bytes stay literal), and a page-like mix.
  std::vector<std::string> inputs;
  inputs.push_back("");
  inputs.push_back("abcdefgh");
  inputs.push_back(std::string(4096, '\0'));
  inputs.push_back(std::string(100, '\0') + "payload");
  inputs.push_back("payload" + std::string(100, '\0'));
  inputs.push_back("head" + std::string(64, '\0') + "tail");
  inputs.push_back(std::string("a\0\0b", 4));             // 2-zero stretch
  inputs.push_back(std::string("a\0\0\0b", 5));           // 3-zero stretch
  inputs.push_back(std::string("a\0\0\0\0b", 6));         // exactly 4
  std::string mixed;
  for (int i = 0; i < 50; i++) {
    mixed += "rec" + std::to_string(i);
    mixed += std::string(static_cast<size_t>(i % 7) * 3, '\0');
  }
  inputs.push_back(mixed);

  for (const std::string& raw : inputs) {
    std::string transfer;
    CheckpointManager::CompressZeroRuns(Slice(raw), &transfer);
    std::string back;
    ASSERT_TRUE(CheckpointManager::DecompressZeroRuns(Slice(transfer),
                                                      raw.size(), &back)
                    .ok())
        << "raw size " << raw.size();
    EXPECT_EQ(back, raw);
  }

  // Mostly-zero page images (the checkpoint shape the codec exists for)
  // must shrink by well over an order of magnitude.
  std::string page(64 * 1024, '\0');
  for (size_t i = 0; i < 2000; i++) page[i] = static_cast<char>(i * 13 + 1);
  std::string transfer;
  CheckpointManager::CompressZeroRuns(Slice(page), &transfer);
  EXPECT_LT(transfer.size(), page.size() / 10);
}

TEST(CheckpointManagerTest, ZeroRunCodecRejectsBadTransfers) {
  const std::string raw = "head" + std::string(64, '\0') + "tail";
  std::string transfer;
  CheckpointManager::CompressZeroRuns(Slice(raw), &transfer);

  // Every truncation must fail (the image consumes its input exactly).
  for (size_t len = 0; len < transfer.size(); len++) {
    std::string out;
    EXPECT_FALSE(CheckpointManager::DecompressZeroRuns(
                     Slice(transfer.data(), len), raw.size(), &out)
                     .ok())
        << "length " << len;
  }
  // Wrong declared size, both directions.
  std::string out;
  EXPECT_FALSE(CheckpointManager::DecompressZeroRuns(Slice(transfer),
                                                     raw.size() - 1, &out)
                   .ok());
  EXPECT_FALSE(CheckpointManager::DecompressZeroRuns(Slice(transfer),
                                                     raw.size() + 1, &out)
                   .ok());
  // A zero run that would blow past the declared size is rejected before
  // any allocation of that size happens.
  std::string evil;
  PutVarint32(&evil, 0);                    // empty literal
  PutVarint32(&evil, 0xFFFFFFFF);           // 4 GiB of zeros
  EXPECT_FALSE(
      CheckpointManager::DecompressZeroRuns(Slice(evil), 1024, &out).ok());
}

}  // namespace
}  // namespace sebdb
