// Core-layer tests: keystore signatures, access control, chain manager
// recovery, the ChainSQL baseline and stored procedures.
#include <gtest/gtest.h>

#include "core/access_control.h"
#include "core/chain_manager.h"
#include "core/chainsql_baseline.h"
#include "core/signer.h"
#include "tests/test_util.h"

namespace sebdb {
namespace {

using testing_util::MakeTxn;
using testing_util::ScratchDir;
using testing_util::TestChain;

TEST(KeyStoreTest, SignAndVerify) {
  KeyStore keystore;
  ASSERT_TRUE(keystore.AddIdentity("alice", "secret-a").ok());
  ASSERT_TRUE(keystore.AddIdentity("bob", "secret-b").ok());
  EXPECT_TRUE(keystore.HasIdentity("alice"));
  EXPECT_FALSE(keystore.HasIdentity("carol"));
  // Same secret re-registration is idempotent; different secret fails.
  EXPECT_TRUE(keystore.AddIdentity("alice", "secret-a").ok());
  EXPECT_TRUE(keystore.AddIdentity("alice", "other").IsInvalidArgument());

  std::string signature;
  ASSERT_TRUE(keystore.Sign("alice", Slice("payload"), &signature).ok());
  EXPECT_TRUE(keystore.Verify("alice", Slice("payload"), signature).ok());
  EXPECT_TRUE(keystore.Verify("alice", Slice("other"), signature)
                  .IsVerificationFailed());
  EXPECT_TRUE(keystore.Verify("bob", Slice("payload"), signature)
                  .IsVerificationFailed());
  EXPECT_TRUE(keystore.Sign("carol", Slice("x"), &signature).IsNotFound());
}

TEST(KeyStoreTest, TransactionSigning) {
  KeyStore keystore;
  ASSERT_TRUE(keystore.AddIdentity("org1", "k1").ok());
  Transaction txn("donate", {Value::Int(100)});
  txn.set_ts(5);
  ASSERT_TRUE(keystore.SignTransaction("org1", &txn).ok());
  EXPECT_EQ(txn.sender(), "org1");
  EXPECT_TRUE(keystore.VerifyTransaction(txn).ok());
  // Tamper with a value: signature breaks.
  Transaction tampered = txn;
  tampered.set_values({Value::Int(999)});
  EXPECT_TRUE(keystore.VerifyTransaction(tampered).IsVerificationFailed());
  // tid assignment later does NOT break the signature.
  txn.set_tid(77);
  EXPECT_TRUE(keystore.VerifyTransaction(txn).ok());
}

TEST(AccessControlTest, ChannelMembership) {
  AccessControl acl;
  ASSERT_TRUE(acl.AssignTable("doneeinfo", "school-channel").ok());
  ASSERT_TRUE(acl.AddMember("school-channel", "school1").ok());
  EXPECT_TRUE(acl.CheckAccess("school1", "doneeinfo").ok());
  EXPECT_TRUE(acl.CheckAccess("outsider", "doneeinfo").IsInvalidArgument());
  // Public tables are open to anyone.
  EXPECT_TRUE(acl.CheckAccess("anyone", "donate").ok());
  EXPECT_TRUE(acl.IsPublic("donate"));
  EXPECT_FALSE(acl.IsPublic("doneeinfo"));
  // Re-assigning to another channel fails.
  EXPECT_TRUE(acl.AssignTable("doneeinfo", "other").IsInvalidArgument());
}

TEST(ChainManagerTest, GenesisAndAppend) {
  TestChain chain("cm_basic");
  EXPECT_EQ(chain.chain().height(), 1u);  // genesis
  EXPECT_FALSE(chain.chain().tip_hash().IsZero());
  ASSERT_TRUE(chain.AppendBlock({MakeTxn("t", "a", 10, {Value::Int(1)})}).ok());
  EXPECT_EQ(chain.chain().height(), 2u);
  EXPECT_EQ(chain.chain().next_tid(), 2u);
  // Duplicate seq is a no-op, future seq is rejected.
  EXPECT_TRUE(chain.chain().AppendBatch(0, {}, 0, "s").ok());
  EXPECT_TRUE(
      chain.chain().AppendBatch(5, {}, 0, "s").IsInvalidArgument());
}

TEST(ChainManagerTest, RecoveryReplaysIndexesAndCatalog) {
  ScratchDir dir("cm_recover");
  Schema schema;
  ASSERT_TRUE(
      Schema::Create("donate", {{"amount", ValueType::kInt64}}, &schema).ok());
  {
    ChainManager chain("n", nullptr);
    ChainOptions options;
    options.verify_signatures = false;
    ASSERT_TRUE(chain.Open(options, dir.path()).ok());
    Transaction schema_txn = Catalog::MakeSchemaTransaction(schema);
    schema_txn.set_sender("admin");
    schema_txn.set_ts(1);
    ASSERT_TRUE(
        chain.AppendBatch(0, {std::move(schema_txn)}, 1, "s").ok());
    ASSERT_TRUE(chain
                    .AppendBatch(1,
                                 {MakeTxn("donate", "a", 2, {Value::Int(5)}),
                                  MakeTxn("donate", "b", 3, {Value::Int(6)})},
                                 3, "s")
                    .ok());
    chain.Close();
  }
  ChainManager chain("n", nullptr);
  ChainOptions options;
  options.verify_signatures = false;
  ASSERT_TRUE(chain.Open(options, dir.path()).ok());
  EXPECT_EQ(chain.height(), 3u);
  EXPECT_EQ(chain.next_tid(), 4u);
  EXPECT_TRUE(chain.catalog()->HasTable("donate"));
  EXPECT_TRUE(chain.indexes()->table_index().BlocksWithTable("donate").Test(2));
  EXPECT_TRUE(chain.indexes()
                  ->senid_index()
                  ->BlocksWithValue(Value::Str("a"))
                  .Test(2));
}

TEST(ChainManagerTest, GossipApplyValidates) {
  TestChain source("cm_gossip_src");
  ASSERT_TRUE(
      source.AppendBlock({MakeTxn("t", "a", 10, {Value::Int(1)})}).ok());
  std::string record;
  ASSERT_TRUE(source.chain().GetBlockRecord(1, &record).ok());

  TestChain target("cm_gossip_dst");
  // Future block (gap) rejected.
  EXPECT_TRUE(
      target.chain().ApplyBlockRecord(2, record).IsInvalidArgument());
  // Correct height applies (genesis blocks are identical by construction).
  ASSERT_TRUE(target.chain().ApplyBlockRecord(1, record).ok());
  EXPECT_EQ(target.chain().height(), 2u);
  // Stale re-apply is a no-op.
  EXPECT_TRUE(target.chain().ApplyBlockRecord(1, record).ok());
  // Corrupted record rejected.
  std::string bad = record;
  bad[bad.size() / 2] ^= 0x1;
  EXPECT_FALSE(target.chain().ApplyBlockRecord(2, bad).ok());
}

TEST(ChainManagerTest, TimestampsClampedMonotone) {
  TestChain chain("cm_ts");
  ASSERT_TRUE(chain.AppendBlock({MakeTxn("t", "a", 100, {})}).ok());
  // A batch whose max ts is lower than the tip's gets clamped, not rejected.
  ASSERT_TRUE(chain.AppendBlock({MakeTxn("t", "a", 50, {})}).ok());
  BlockHeader h1, h2;
  ASSERT_TRUE(chain.chain().GetHeader(1, &h1).ok());
  ASSERT_TRUE(chain.chain().GetHeader(2, &h2).ok());
  EXPECT_GE(h2.timestamp, h1.timestamp);
}

TEST(ChainsqlBaselineTest, ReplicatesAndFilters) {
  TestChain chain("chainsql");
  for (int b = 0; b < 5; b++) {
    std::vector<Transaction> txns;
    for (int i = 0; i < 4; i++) {
      txns.push_back(MakeTxn(i % 2 == 0 ? "transfer" : "donate",
                             i < 2 ? "org1" : "org2", b * 100 + i,
                             {Value::Int(i)}));
    }
    ASSERT_TRUE(chain.AppendBlock(std::move(txns)).ok());
  }
  ChainsqlBaseline baseline;
  ASSERT_TRUE(baseline.IngestChain(&chain.chain()).ok());
  EXPECT_EQ(baseline.num_replicated(), 20u);

  // GET_TRANSACTION returns everything org1 sent (10 txns).
  std::vector<Transaction> all;
  ASSERT_TRUE(baseline.GetTransactionsByOperator("org1", &all).ok());
  EXPECT_EQ(all.size(), 10u);

  // Client-side filtering narrows by operation and window.
  std::vector<Transaction> filtered;
  ASSERT_TRUE(baseline
                  .TrackClientSide("org1", "transfer", 0,
                                   std::numeric_limits<Timestamp>::max(),
                                   &filtered)
                  .ok());
  EXPECT_EQ(filtered.size(), 5u);
  filtered.clear();
  ASSERT_TRUE(
      baseline.TrackClientSide("org1", "transfer", 0, 150, &filtered).ok());
  EXPECT_EQ(filtered.size(), 2u);  // ts 0 and 100
}

}  // namespace
}  // namespace sebdb
