// Overload-protection tests: AdmissionController semantics (caps, dedup,
// quotas, the overload-state machine) and end-to-end shed-then-resubmit
// behavior across all three consensus engines — a shed transaction, once
// resubmitted after load drains, commits exactly once.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/admission.h"
#include "consensus/kafka_orderer.h"
#include "consensus/pbft.h"
#include "consensus/tendermint.h"
#include "network/sim_network.h"
#include "tests/test_util.h"

namespace sebdb {
namespace {

using testing_util::MakeTxn;

// --- AdmissionController unit tests ---

TEST(AdmissionTest, TxnCapRejectsAndReleaseRecovers) {
  AdmissionOptions options;
  options.max_txns = 2;
  AdmissionController admission(options);
  EXPECT_TRUE(admission.Admit("k1", "s", 10).ok());
  EXPECT_TRUE(admission.Admit("k2", "s", 10).ok());
  Status rejected = admission.Admit("k3", "s", 10);
  EXPECT_TRUE(rejected.IsResourceExhausted());
  EXPECT_GE(rejected.retry_after_millis(), options.retry_after_base_millis);
  admission.Release("k1");
  EXPECT_TRUE(admission.Admit("k3", "s", 10).ok());

  AdmissionStats stats = admission.stats();
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.rejected_txns, 1u);
  EXPECT_EQ(stats.released, 1u);
  EXPECT_EQ(stats.cur_txns, 2u);
  EXPECT_EQ(stats.peak_txns, 2u);
}

TEST(AdmissionTest, ByteCapRejects) {
  AdmissionOptions options;
  options.max_bytes = 100;
  AdmissionController admission(options);
  EXPECT_TRUE(admission.Admit("k1", "s", 80).ok());
  Status rejected = admission.Admit("k2", "s", 30);
  EXPECT_TRUE(rejected.IsResourceExhausted());
  EXPECT_EQ(admission.stats().rejected_bytes, 1u);
  EXPECT_EQ(admission.stats().cur_bytes, 80u);
  admission.Release("k1");
  EXPECT_TRUE(admission.Admit("k2", "s", 30).ok());
  EXPECT_EQ(admission.stats().cur_bytes, 30u);
}

TEST(AdmissionTest, DuplicateKeyNotDoubleCharged) {
  AdmissionController admission;
  bool duplicate = false;
  EXPECT_TRUE(admission.Admit("k", "s", 10, &duplicate).ok());
  EXPECT_FALSE(duplicate);
  EXPECT_TRUE(admission.Admit("k", "s", 10, &duplicate).ok());
  EXPECT_TRUE(duplicate);
  AdmissionStats stats = admission.stats();
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.deduped, 1u);
  EXPECT_EQ(stats.cur_txns, 1u);
  EXPECT_EQ(stats.cur_bytes, 10u);
}

TEST(AdmissionTest, PerSenderQuotaIsolatesSenders) {
  AdmissionOptions options;
  options.max_txns_per_sender = 1;
  AdmissionController admission(options);
  EXPECT_TRUE(admission.Admit("a1", "alice", 10).ok());
  Status rejected = admission.Admit("a2", "alice", 10);
  EXPECT_TRUE(rejected.IsResourceExhausted());
  // A greedy sender does not starve the others.
  EXPECT_TRUE(admission.Admit("b1", "bob", 10).ok());
  EXPECT_EQ(admission.stats().rejected_sender, 1u);
  admission.Release("a1");
  EXPECT_TRUE(admission.Admit("a2", "alice", 10).ok());
}

TEST(AdmissionTest, OverloadStateMachine) {
  AdmissionOptions options;
  options.max_txns = 4;
  options.throttle_threshold = 0.5;
  AdmissionController admission(options);
  EXPECT_EQ(admission.state(), OverloadState::kHealthy);
  ASSERT_TRUE(admission.Admit("k1", "s", 1).ok());
  EXPECT_EQ(admission.state(), OverloadState::kHealthy);
  ASSERT_TRUE(admission.Admit("k2", "s", 1).ok());
  EXPECT_EQ(admission.state(), OverloadState::kThrottling);
  ASSERT_TRUE(admission.Admit("k3", "s", 1).ok());
  ASSERT_TRUE(admission.Admit("k4", "s", 1).ok());
  EXPECT_EQ(admission.state(), OverloadState::kShedding);
  admission.Release("k4");
  admission.Release("k3");
  admission.Release("k2");
  admission.Release("k1");
  EXPECT_EQ(admission.state(), OverloadState::kHealthy);
  // healthy -> throttling -> shedding -> throttling -> healthy.
  EXPECT_GE(admission.stats().state_transitions, 4u);
}

TEST(AdmissionTest, RetryAfterScalesWithOccupancy) {
  AdmissionOptions options;
  options.max_txns = 100;
  options.retry_after_base_millis = 25;
  AdmissionController low(options);
  AdmissionController high(options);
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(
        high.Admit("k" + std::to_string(i), "s", 1).ok());
  }
  Status high_reject = high.Admit("extra", "s", 1);
  ASSERT_TRUE(high_reject.IsResourceExhausted());
  // At full occupancy the hint approaches 4x the base.
  EXPECT_GE(high_reject.retry_after_millis(),
            3 * options.retry_after_base_millis);
  EXPECT_LE(high_reject.retry_after_millis(),
            4 * options.retry_after_base_millis);
}

TEST(AdmissionTest, DisabledAdmitsEverythingButStillCounts) {
  AdmissionOptions options;
  options.enabled = false;
  options.max_txns = 1;
  AdmissionController admission(options);
  for (int i = 0; i < 10; i++) {
    EXPECT_TRUE(admission.Admit("k" + std::to_string(i), "s", 1).ok());
  }
  EXPECT_EQ(admission.stats().admitted, 10u);
  EXPECT_EQ(admission.stats().rejected_total(), 0u);
  EXPECT_EQ(admission.stats().cur_txns, 0u);  // nothing tracked
}

TEST(AdmissionTest, ClearDropsChargesKeepsCounters) {
  AdmissionOptions options;
  options.max_txns = 2;
  AdmissionController admission(options);
  ASSERT_TRUE(admission.Admit("k1", "s", 10).ok());
  ASSERT_TRUE(admission.Admit("k2", "s", 10).ok());
  admission.Clear();
  EXPECT_EQ(admission.stats().cur_txns, 0u);
  EXPECT_EQ(admission.stats().admitted, 2u);
  EXPECT_TRUE(admission.Admit("k3", "s", 10).ok());
}

TEST(AdmissionTest, MergeStatsSumsCountersAndTakesWorstState) {
  AdmissionStats a, b;
  a.admitted = 3;
  a.rejected_txns = 1;
  a.peak_txns = 5;
  a.state = OverloadState::kHealthy;
  b.admitted = 4;
  b.rejected_bytes = 2;
  b.peak_txns = 9;
  b.state = OverloadState::kShedding;
  AdmissionStats merged = MergeAdmissionStats(a, b);
  EXPECT_EQ(merged.admitted, 7u);
  EXPECT_EQ(merged.rejected_total(), 3u);
  EXPECT_EQ(merged.peak_txns, 9u);
  EXPECT_EQ(merged.state, OverloadState::kShedding);
}

// --- engine-level shed-then-resubmit, exactly-once ---

// Collects committed batches per node and lets tests wait on progress.
class CommitLog {
 public:
  BatchCommitFn MakeFn() {
    return [this](uint64_t seq, std::vector<Transaction> txns) {
      std::lock_guard<std::mutex> lock(mu_);
      (void)seq;
      for (auto& txn : txns) txns_.push_back(std::move(txn));
      cv_.notify_all();
    };
  }
  bool WaitForTxns(size_t n, int timeout_ms = 10000) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                        [&] { return txns_.size() >= n; });
  }
  std::vector<Transaction> txns() {
    std::lock_guard<std::mutex> lock(mu_);
    return txns_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Transaction> txns_;
};

template <typename Engine>
struct NodeHarness {
  ~NodeHarness() {
    if (net != nullptr) net->Unregister(id);
    if (engine) engine->Stop();
  }
  std::unique_ptr<Engine> engine;
  CommitLog log;
  SimNetwork* net = nullptr;
  std::string id;
};

// Counts how often `txn` was committed on a node.
size_t CountCommits(CommitLog& log, const Transaction& txn) {
  size_t count = 0;
  for (const auto& committed : log.txns()) {
    if (committed == txn) count++;
  }
  return count;
}

ConsensusOptions TinyMempoolOptions() {
  ConsensusOptions options;
  options.max_batch_txns = 10;
  options.batch_timeout_millis = 20;
  options.admission.max_txns = 1;  // second in-flight submission sheds
  return options;
}

// Submits `txn`, retrying on ResourceExhausted after the server-driven
// hint, until admitted or attempts run out. Returns the final Submit status.
// Engines also fire the callback on synchronous shedding (with the same
// status Submit returns); those verdicts are filtered out so `done` only
// sees the post-admission outcome.
template <typename Engine>
Status SubmitWithRetry(Engine* engine, const Transaction& txn,
                       std::function<void(Status)> done, int attempts = 50) {
  Status s;
  for (int i = 0; i < attempts; i++) {
    s = engine->Submit(txn, [done](Status st) {
      if (st.IsResourceExhausted()) return;
      if (done) done(st);
    });
    if (!s.IsResourceExhausted()) return s;
    int64_t sleep_ms = std::max<int64_t>(s.retry_after_millis(), 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
  return s;
}

TEST(OverloadTest, TendermintShedThenResubmitCommitsOnce) {
  SimNetwork net;
  std::vector<std::string> ids = {"n0", "n1", "n2", "n3"};
  std::vector<std::unique_ptr<NodeHarness<TendermintEngine>>> nodes;
  TendermintOptions tm;
  tm.serial_txn_cost_micros = 0;
  for (const auto& id : ids) {
    auto h = std::make_unique<NodeHarness<TendermintEngine>>();
    h->net = &net;
    h->id = id;
    h->engine = std::make_unique<TendermintEngine>(
        id, ids, &net, TinyMempoolOptions(), h->log.MakeFn(), tm);
    TendermintEngine* engine = h->engine.get();
    ASSERT_TRUE(net.Register(id, [engine](const Message& m) {
                       engine->HandleMessage(m);
                     }).ok());
    ASSERT_TRUE(h->engine->Start().ok());
    nodes.push_back(std::move(h));
  }

  Transaction a = MakeTxn("t", "client", 100, {Value::Int(1)});
  Transaction b = MakeTxn("t", "client", 200, {Value::Int(2)});
  ASSERT_TRUE(nodes[0]->engine->Submit(a, nullptr).ok());
  // The mempool cap (1) is taken by `a`: `b` sheds with a retry hint.
  Status shed = nodes[0]->engine->Submit(b, nullptr);
  EXPECT_TRUE(shed.IsResourceExhausted());
  EXPECT_GT(shed.retry_after_millis(), 0);

  // Load drains (a commits); the resubmission goes through and commits.
  std::atomic<int> acked{0};
  ASSERT_TRUE(SubmitWithRetry(nodes[0]->engine.get(), b,
                              [&](Status s) {
                                EXPECT_TRUE(s.ok());
                                acked++;
                              })
                  .ok());
  for (auto& node : nodes) {
    ASSERT_TRUE(node->log.WaitForTxns(2)) << node->id;
    EXPECT_EQ(CountCommits(node->log, a), 1u) << node->id;
    EXPECT_EQ(CountCommits(node->log, b), 1u) << node->id;
  }
  for (int i = 0; i < 500 && acked.load() < 1; i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(acked.load(), 1);
}

TEST(OverloadTest, PbftShedThenResubmitCommitsOnce) {
  SimNetwork net;
  std::vector<std::string> ids = {"n0", "n1", "n2", "n3"};
  std::vector<std::unique_ptr<NodeHarness<PbftEngine>>> nodes;
  for (const auto& id : ids) {
    auto h = std::make_unique<NodeHarness<PbftEngine>>();
    h->net = &net;
    h->id = id;
    h->engine = std::make_unique<PbftEngine>(id, ids, &net,
                                             TinyMempoolOptions(),
                                             h->log.MakeFn());
    PbftEngine* engine = h->engine.get();
    ASSERT_TRUE(net.Register(id, [engine](const Message& m) {
                       engine->HandleMessage(m);
                     }).ok());
    ASSERT_TRUE(h->engine->Start().ok());
    nodes.push_back(std::move(h));
  }

  // Submit through a non-primary origin.
  Transaction a = MakeTxn("t", "client", 100, {Value::Int(1)});
  Transaction b = MakeTxn("t", "client", 200, {Value::Int(2)});
  ASSERT_TRUE(nodes[1]->engine->Submit(a, nullptr).ok());
  Status shed = nodes[1]->engine->Submit(b, nullptr);
  EXPECT_TRUE(shed.IsResourceExhausted());

  std::atomic<int> acked{0};
  ASSERT_TRUE(SubmitWithRetry(nodes[1]->engine.get(), b,
                              [&](Status s) {
                                EXPECT_TRUE(s.ok());
                                acked++;
                              })
                  .ok());
  for (auto& node : nodes) {
    ASSERT_TRUE(node->log.WaitForTxns(2)) << node->id;
    EXPECT_EQ(CountCommits(node->log, a), 1u) << node->id;
    EXPECT_EQ(CountCommits(node->log, b), 1u) << node->id;
  }
  for (int i = 0; i < 500 && acked.load() < 1; i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(acked.load(), 1);
}

TEST(OverloadTest, PbftResubmitAfterCommitAcksImmediately) {
  SimNetwork net;
  std::vector<std::string> ids = {"n0", "n1", "n2", "n3"};
  std::vector<std::unique_ptr<NodeHarness<PbftEngine>>> nodes;
  ConsensusOptions options;
  options.max_batch_txns = 1;
  options.batch_timeout_millis = 20;
  for (const auto& id : ids) {
    auto h = std::make_unique<NodeHarness<PbftEngine>>();
    h->net = &net;
    h->id = id;
    h->engine = std::make_unique<PbftEngine>(id, ids, &net, options,
                                             h->log.MakeFn());
    PbftEngine* engine = h->engine.get();
    ASSERT_TRUE(net.Register(id, [engine](const Message& m) {
                       engine->HandleMessage(m);
                     }).ok());
    ASSERT_TRUE(h->engine->Start().ok());
    nodes.push_back(std::move(h));
  }
  Transaction a = MakeTxn("t", "client", 100, {Value::Int(1)});
  ASSERT_TRUE(nodes[1]->engine->Submit(a, nullptr).ok());
  for (auto& node : nodes) ASSERT_TRUE(node->log.WaitForTxns(1));

  // A caller that timed out and resubmits the committed txn is acked at
  // once; the txn is not ordered a second time.
  std::atomic<int> acked{0};
  ASSERT_TRUE(nodes[1]
                  ->engine
                  ->Submit(a,
                           [&](Status s) {
                             EXPECT_TRUE(s.ok());
                             acked++;
                           })
                  .ok());
  EXPECT_EQ(acked.load(), 1);
  net.DrainAll();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  for (auto& node : nodes) {
    EXPECT_EQ(CountCommits(node->log, a), 1u) << node->id;
  }
}

TEST(OverloadTest, KafkaBrokerNackPropagatesBackpressure) {
  SimNetwork net;  // zero latency: sends are deterministic
  std::vector<std::string> ids = {"n0", "n1", "n2"};
  std::vector<std::unique_ptr<NodeHarness<KafkaOrderer>>> nodes;
  ConsensusOptions options;
  options.max_batch_txns = 10;
  options.batch_timeout_millis = 200;  // keep `a` pending at the broker
  options.admission.max_txns = 1;
  for (const auto& id : ids) {
    auto h = std::make_unique<NodeHarness<KafkaOrderer>>();
    h->net = &net;
    h->id = id;
    h->engine = std::make_unique<KafkaOrderer>(id, "n0", ids, &net, options,
                                               h->log.MakeFn());
    KafkaOrderer* engine = h->engine.get();
    ASSERT_TRUE(net.Register(id, [engine](const Message& m) {
                       engine->HandleMessage(m);
                     }).ok());
    ASSERT_TRUE(h->engine->Start().ok());
    nodes.push_back(std::move(h));
  }

  // `a` (from n1) fills the broker's pending queue.
  Transaction a = MakeTxn("t", "alice", 100, {Value::Int(1)});
  ASSERT_TRUE(nodes[1]->engine->Submit(a, nullptr).ok());
  net.DrainAll();

  // `b` (from n2) passes n2's local admission but is shed by the broker;
  // the nack travels back and fails n2's completion callback with a hint.
  Transaction b = MakeTxn("t", "bob", 200, {Value::Int(2)});
  std::mutex mu;
  std::condition_variable cv;
  Status nacked;
  bool got_nack = false;
  ASSERT_TRUE(nodes[2]
                  ->engine
                  ->Submit(b,
                           [&](Status s) {
                             std::lock_guard<std::mutex> lock(mu);
                             nacked = s;
                             got_nack = true;
                             cv.notify_all();
                           })
                  .ok());
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                            [&] { return got_nack; }));
  }
  EXPECT_TRUE(nacked.IsResourceExhausted()) << nacked.ToString();
  EXPECT_GT(nacked.retry_after_millis(), 0);
  EXPECT_GE(nodes[0]->engine->mempool_stats().admission.rejected_total(), 1u);

  // Once the batch timeout cuts `a`, the resubmission of `b` is admitted
  // and commits; both txns land exactly once on every node. The retry loop
  // is driven by the completion callback — Submit returns OK as soon as
  // local admission passes, the broker's verdict arrives asynchronously.
  Status last;
  for (int attempt = 0; attempt < 50; attempt++) {
    std::unique_lock<std::mutex> lock(mu);
    got_nack = false;
    lock.unlock();
    Status submitted = nodes[2]->engine->Submit(b, [&](Status s) {
      std::lock_guard<std::mutex> inner(mu);
      nacked = s;
      got_nack = true;
      cv.notify_all();
    });
    ASSERT_TRUE(submitted.ok() || submitted.IsResourceExhausted());
    lock.lock();
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                            [&] { return got_nack; }));
    last = nacked;
    lock.unlock();
    if (last.ok()) break;
    ASSERT_TRUE(last.IsResourceExhausted()) << last.ToString();
    std::this_thread::sleep_for(
        std::chrono::milliseconds(std::max<int64_t>(
            last.retry_after_millis(), 1)));
  }
  EXPECT_TRUE(last.ok()) << last.ToString();
  for (auto& node : nodes) {
    ASSERT_TRUE(node->log.WaitForTxns(2)) << node->id;
    EXPECT_EQ(CountCommits(node->log, a), 1u) << node->id;
    EXPECT_EQ(CountCommits(node->log, b), 1u) << node->id;
  }
}

TEST(OverloadTest, KafkaResubmitOfSequencedTxnAcksWithoutReordering) {
  SimNetwork net;
  std::vector<std::string> ids = {"n0", "n1"};
  std::vector<std::unique_ptr<NodeHarness<KafkaOrderer>>> nodes;
  ConsensusOptions options;
  options.max_batch_txns = 1;
  options.batch_timeout_millis = 20;
  for (const auto& id : ids) {
    auto h = std::make_unique<NodeHarness<KafkaOrderer>>();
    h->net = &net;
    h->id = id;
    h->engine = std::make_unique<KafkaOrderer>(id, "n0", ids, &net, options,
                                               h->log.MakeFn());
    KafkaOrderer* engine = h->engine.get();
    ASSERT_TRUE(net.Register(id, [engine](const Message& m) {
                       engine->HandleMessage(m);
                     }).ok());
    ASSERT_TRUE(h->engine->Start().ok());
    nodes.push_back(std::move(h));
  }
  Transaction a = MakeTxn("t", "alice", 100, {Value::Int(1)});
  ASSERT_TRUE(nodes[1]->engine->Submit(a, nullptr).ok());
  for (auto& node : nodes) ASSERT_TRUE(node->log.WaitForTxns(1));

  // Resubmission (as after a client timeout): the broker dedups via its
  // sequenced-key set and acks the origin so the caller is not left
  // hanging; no second delivery happens.
  std::mutex mu;
  std::condition_variable cv;
  bool acked = false;
  Status ack_status;
  ASSERT_TRUE(nodes[1]
                  ->engine
                  ->Submit(a,
                           [&](Status s) {
                             std::lock_guard<std::mutex> lock(mu);
                             ack_status = s;
                             acked = true;
                             cv.notify_all();
                           })
                  .ok());
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(
        cv.wait_for(lock, std::chrono::seconds(5), [&] { return acked; }));
  }
  EXPECT_TRUE(ack_status.ok()) << ack_status.ToString();
  net.DrainAll();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  for (auto& node : nodes) {
    EXPECT_EQ(CountCommits(node->log, a), 1u) << node->id;
  }
}

// --- engine mempool stats surface ---

TEST(OverloadTest, MempoolStatsReflectAdmission) {
  SimNetwork net;
  ConsensusOptions options;
  options.max_batch_txns = 1000;  // nothing cuts during the test
  options.batch_timeout_millis = 10000;
  options.admission.max_txns = 2;
  CommitLog log;
  KafkaOrderer engine("n0", "n0", {"n0"}, &net, options, log.MakeFn());
  ASSERT_TRUE(
      net.Register("n0", [&](const Message& m) { engine.HandleMessage(m); })
          .ok());
  ASSERT_TRUE(engine.Start().ok());
  ASSERT_TRUE(
      engine.Submit(MakeTxn("t", "s", 1, {Value::Int(1)}), nullptr).ok());
  ASSERT_TRUE(
      engine.Submit(MakeTxn("t", "s", 2, {Value::Int(2)}), nullptr).ok());
  net.DrainAll();
  MempoolStats stats = engine.mempool_stats();
  EXPECT_EQ(stats.depth, 2u);
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_GE(stats.admission.admitted, 2u);
  EXPECT_EQ(stats.admission.state, OverloadState::kShedding);  // at cap
  engine.Stop();
}

}  // namespace
}  // namespace sebdb
