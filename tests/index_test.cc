// Unit and property tests for src/index: block-level index, table-level
// bitmap index, equal-depth histogram and the layered index.
#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "index/bitmap_index.h"
#include "index/block_index.h"
#include "index/histogram.h"
#include "index/layered_index.h"
#include "storage/block.h"
#include "tests/test_util.h"

namespace sebdb {
namespace {

using testing_util::MakeTxn;

BlockHeader MakeHeader(BlockId height, TransactionId first_tid, uint32_t n,
                       Timestamp ts) {
  BlockHeader h;
  h.height = height;
  h.first_tid = first_tid;
  h.num_transactions = n;
  h.timestamp = ts;
  return h;
}

TEST(BlockIndexTest, FindByBlockId) {
  BlockIndex index;
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(index.Add(MakeHeader(i, i * 10 + 1, 10, i * 1000)).ok());
  }
  BlockIndexEntry entry;
  ASSERT_TRUE(index.FindByBlockId(37, &entry).ok());
  EXPECT_EQ(entry.bid, 37u);
  EXPECT_EQ(entry.first_tid, 371u);
  EXPECT_TRUE(index.FindByBlockId(100, &entry).IsNotFound());
}

TEST(BlockIndexTest, FindByTid) {
  BlockIndex index;
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(index.Add(MakeHeader(i, i * 10 + 1, 10, i * 1000)).ok());
  }
  BlockIndexEntry entry;
  // tid 1 is in block 0; tid 10 is in block 0; tid 11 in block 1.
  ASSERT_TRUE(index.FindByTid(1, &entry).ok());
  EXPECT_EQ(entry.bid, 0u);
  ASSERT_TRUE(index.FindByTid(10, &entry).ok());
  EXPECT_EQ(entry.bid, 0u);
  ASSERT_TRUE(index.FindByTid(11, &entry).ok());
  EXPECT_EQ(entry.bid, 1u);
  ASSERT_TRUE(index.FindByTid(499, &entry).ok());
  EXPECT_EQ(entry.bid, 49u);
  EXPECT_FALSE(index.FindByTid(0, &entry).ok());
  EXPECT_FALSE(index.FindByTid(501, &entry).ok());
}

TEST(BlockIndexTest, FindByTimestampAndWindow) {
  BlockIndex index;
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(index.Add(MakeHeader(i, i * 5 + 1, 5, i * 100)).ok());
  }
  BlockIndexEntry entry;
  ASSERT_TRUE(index.FindFirstAtOrAfter(350, &entry).ok());
  EXPECT_EQ(entry.bid, 4u);  // ts 400 is the first >= 350
  ASSERT_TRUE(index.FindFirstAtOrAfter(400, &entry).ok());
  EXPECT_EQ(entry.bid, 4u);
  EXPECT_TRUE(index.FindFirstAtOrAfter(5000, &entry).IsNotFound());

  Bitmap window = index.BlocksInWindow(250, 650);
  std::set<size_t> expected = {3, 4, 5, 6};  // ts 300..600
  auto bits = window.SetBits();
  EXPECT_EQ(std::set<size_t>(bits.begin(), bits.end()), expected);

  EXPECT_FALSE(index.BlocksInWindow(700, 600).AnySet());  // inverted window
}

TEST(BlockIndexTest, RejectsOutOfOrder) {
  BlockIndex index;
  ASSERT_TRUE(index.Add(MakeHeader(0, 1, 5, 100)).ok());
  EXPECT_FALSE(index.Add(MakeHeader(2, 20, 5, 300)).ok());  // gap
  EXPECT_FALSE(index.Add(MakeHeader(1, 6, 5, 50)).ok());    // ts backwards
  EXPECT_FALSE(index.Add(MakeHeader(1, 3, 5, 300)).ok());   // tid backwards
}

TEST(DiscreteBitmapIndexTest, LookupAndUnion) {
  DiscreteBitmapIndex index;
  index.AddBlock(0, {"donate", "transfer"});
  index.AddBlock(1, {"donate"});
  index.AddBlock(2, {"distribute"});
  EXPECT_EQ(index.num_blocks(), 3u);
  EXPECT_TRUE(index.Lookup("donate").Test(0));
  EXPECT_TRUE(index.Lookup("donate").Test(1));
  EXPECT_FALSE(index.Lookup("donate").Test(2));
  EXPECT_FALSE(index.Lookup("unknown").AnySet());
  Bitmap any = index.LookupAny({"transfer", "distribute"});
  EXPECT_TRUE(any.Test(0));
  EXPECT_FALSE(any.Test(1));
  EXPECT_TRUE(any.Test(2));
  EXPECT_EQ(index.Keys().size(), 3u);
}

Block MakeBlockOf(BlockId height, std::vector<Transaction> txns,
                  TransactionId first_tid = 1) {
  BlockBuilder builder;
  builder.SetHeight(height).SetTimestamp(height * 100).SetFirstTid(first_tid);
  for (auto& txn : txns) builder.AddTransaction(std::move(txn));
  return std::move(builder).Build("sig");
}

TEST(TableBitmapIndexTest, TracksTablesPerBlock) {
  TableBitmapIndex index;
  index.AddBlock(MakeBlockOf(0, {MakeTxn("donate", "a", 1, {}),
                                 MakeTxn("transfer", "b", 2, {})}));
  index.AddBlock(MakeBlockOf(1, {MakeTxn("donate", "a", 3, {})}));
  index.AddBlock(MakeBlockOf(2, {}));
  EXPECT_EQ(index.num_blocks(), 3u);
  EXPECT_TRUE(index.BlocksWithTable("donate").Test(0));
  EXPECT_TRUE(index.BlocksWithTable("donate").Test(1));
  EXPECT_FALSE(index.BlocksWithTable("transfer").Test(1));
  EXPECT_TRUE(index.HasTable("transfer"));
  EXPECT_FALSE(index.HasTable("nope"));
}

TEST(HistogramTest, EqualDepthBoundaries) {
  std::vector<Value> sample;
  for (int i = 0; i < 1000; i++) sample.push_back(Value::Int(i));
  EqualDepthHistogram hist;
  ASSERT_TRUE(EqualDepthHistogram::Build(sample, 10, &hist).ok());
  EXPECT_EQ(hist.num_buckets(), 10u);
  // Each bucket should hold ~100 consecutive values.
  EXPECT_EQ(hist.BucketOf(Value::Int(0)), 0u);
  EXPECT_EQ(hist.BucketOf(Value::Int(999)), 9u);
  size_t b50 = hist.BucketOf(Value::Int(500));
  EXPECT_GE(b50, 4u);
  EXPECT_LE(b50, 5u);
}

TEST(HistogramTest, SkewedSampleStillCovers) {
  std::vector<Value> sample;
  for (int i = 0; i < 900; i++) sample.push_back(Value::Int(1));
  for (int i = 0; i < 100; i++) sample.push_back(Value::Int(i * 100));
  EqualDepthHistogram hist;
  ASSERT_TRUE(EqualDepthHistogram::Build(sample, 10, &hist).ok());
  EXPECT_GE(hist.num_buckets(), 2u);
  // Values below and above the sample range still map to valid buckets.
  EXPECT_LT(hist.BucketOf(Value::Int(-100)), hist.num_buckets());
  EXPECT_LT(hist.BucketOf(Value::Int(1000000)), hist.num_buckets());
}

TEST(HistogramTest, DegenerateSingleValue) {
  EqualDepthHistogram hist;
  ASSERT_TRUE(
      EqualDepthHistogram::Build({Value::Int(5), Value::Int(5)}, 10, &hist)
          .ok());
  EXPECT_EQ(hist.num_buckets(), 2u);
}

TEST(HistogramTest, RejectsBadInput) {
  EqualDepthHistogram hist;
  EXPECT_FALSE(EqualDepthHistogram::Build({}, 10, &hist).ok());
  EXPECT_FALSE(
      EqualDepthHistogram::Build({Value::Int(1)}, 1, &hist).ok());
}

TEST(HistogramTest, BucketsOverlapping) {
  std::vector<Value> sample;
  for (int i = 0; i < 100; i++) sample.push_back(Value::Int(i));
  EqualDepthHistogram hist;
  ASSERT_TRUE(EqualDepthHistogram::Build(sample, 4, &hist).ok());
  Value lo = Value::Int(30), hi = Value::Int(60);
  Bitmap overlap = hist.BucketsOverlapping(&lo, &hi);
  EXPECT_TRUE(overlap.AnySet());
  Bitmap all = hist.BucketsOverlapping(nullptr, nullptr);
  EXPECT_EQ(all.Count(), hist.num_buckets());
}

ColumnExtractor AmountExtractor() {
  return [](const Transaction& txn, Value* out) {
    if (txn.tname() != "donate" || txn.values().empty()) return false;
    *out = txn.values()[0];
    return true;
  };
}

TEST(LayeredIndexTest, ContinuousCandidateFiltering) {
  LayeredIndexOptions options;
  options.histogram_buckets = 10;
  LayeredIndex index("donate.amount", options, AmountExtractor());
  // Histogram from a sample spanning the whole domain (as the paper builds
  // it from historical transactions) so bucket filtering is meaningful.
  std::vector<Value> sample;
  for (int i = 0; i < 1000; i++) sample.push_back(Value::Int(i));
  EqualDepthHistogram hist;
  ASSERT_TRUE(EqualDepthHistogram::Build(sample, 10, &hist).ok());
  ASSERT_TRUE(index.SetHistogram(std::move(hist)).ok());

  // Block 0: amounts 0..99; block 1: 500..599; block 2: none (other table).
  std::vector<Transaction> b0, b1, b2;
  for (int i = 0; i < 100; i++) {
    b0.push_back(MakeTxn("donate", "a", i, {Value::Int(i)}));
    b1.push_back(MakeTxn("donate", "a", 100 + i, {Value::Int(500 + i)}));
  }
  b2.push_back(MakeTxn("transfer", "a", 300, {Value::Int(50)}));
  ASSERT_TRUE(index.AddBlock(MakeBlockOf(0, std::move(b0))).ok());
  ASSERT_TRUE(index.AddBlock(MakeBlockOf(1, std::move(b1), 101)).ok());
  ASSERT_TRUE(index.AddBlock(MakeBlockOf(2, std::move(b2), 201)).ok());

  Value lo = Value::Int(510), hi = Value::Int(520);
  Bitmap candidates = index.CandidateBlocks(&lo, &hi);
  EXPECT_FALSE(candidates.Test(0));
  EXPECT_TRUE(candidates.Test(1));
  EXPECT_FALSE(candidates.Test(2));

  std::vector<TxnPointer> pointers;
  ASSERT_TRUE(index.SearchBlock(1, &lo, &hi, &pointers).ok());
  EXPECT_EQ(pointers.size(), 11u);  // 510..520 inclusive

  std::shared_ptr<const LayeredIndex::SecondLevelTree> tree;
  ASSERT_TRUE(index.Tree(2, &tree).ok());
  EXPECT_EQ(tree, nullptr);  // block 2 has no entries for this index
  ASSERT_TRUE(index.Tree(0, &tree).ok());
  EXPECT_NE(tree, nullptr);
  Bitmap with_entries = index.BlocksWithEntries();
  EXPECT_TRUE(with_entries.Test(0));
  EXPECT_FALSE(with_entries.Test(2));
}

TEST(LayeredIndexTest, DiscreteValueLookup) {
  LayeredIndexOptions options;
  options.discrete = true;
  LayeredIndex index("sys.senid", options,
                     [](const Transaction& txn, Value* out) {
                       *out = Value::Str(txn.sender());
                       return true;
                     });
  ASSERT_TRUE(index
                  .AddBlock(MakeBlockOf(0, {MakeTxn("t", "org1", 1, {}),
                                            MakeTxn("t", "org2", 2, {})}))
                  .ok());
  ASSERT_TRUE(
      index.AddBlock(MakeBlockOf(1, {MakeTxn("t", "org2", 3, {})}, 3)).ok());

  EXPECT_TRUE(index.BlocksWithValue(Value::Str("org1")).Test(0));
  EXPECT_FALSE(index.BlocksWithValue(Value::Str("org1")).Test(1));
  EXPECT_TRUE(index.BlocksWithValue(Value::Str("org2")).Test(1));
  EXPECT_FALSE(index.BlocksWithValue(Value::Str("zzz")).AnySet());

  std::vector<TxnPointer> pointers;
  Value key = Value::Str("org2");
  ASSERT_TRUE(index.SearchBlock(0, &key, &key, &pointers).ok());
  ASSERT_EQ(pointers.size(), 1u);
  EXPECT_EQ(pointers[0].index, 1u);
  EXPECT_EQ(index.discrete_values().size(), 2u);
}

TEST(LayeredIndexTest, RejectsOutOfOrderBlocks) {
  LayeredIndexOptions options;
  options.discrete = true;
  LayeredIndex index("x", options, [](const Transaction&, Value* out) {
    *out = Value::Int(1);
    return true;
  });
  ASSERT_TRUE(index.AddBlock(MakeBlockOf(0, {})).ok());
  EXPECT_FALSE(index.AddBlock(MakeBlockOf(2, {})).ok());
}

// Property: the first level never produces false negatives — every block
// that actually contains a value in the queried range is a candidate.
TEST(LayeredIndexTest, NoFalseNegativesProperty) {
  Random rng(99);
  LayeredIndexOptions options;
  options.histogram_buckets = 8;
  LayeredIndex index("p", options, AmountExtractor());

  std::vector<std::vector<int64_t>> block_values;
  for (int b = 0; b < 40; b++) {
    std::vector<Transaction> txns;
    std::vector<int64_t> values;
    int count = 1 + static_cast<int>(rng.Uniform(20));
    for (int i = 0; i < count; i++) {
      int64_t v = static_cast<int64_t>(rng.Uniform(10000));
      values.push_back(v);
      txns.push_back(MakeTxn("donate", "a", b * 100 + i, {Value::Int(v)}));
    }
    block_values.push_back(values);
    ASSERT_TRUE(index.AddBlock(MakeBlockOf(b, std::move(txns))).ok());
  }

  for (int q = 0; q < 100; q++) {
    int64_t lo = static_cast<int64_t>(rng.Uniform(10000));
    int64_t hi = lo + static_cast<int64_t>(rng.Uniform(2000));
    Value vlo = Value::Int(lo), vhi = Value::Int(hi);
    Bitmap candidates = index.CandidateBlocks(&vlo, &vhi);
    for (size_t b = 0; b < block_values.size(); b++) {
      bool has = false;
      for (int64_t v : block_values[b]) {
        if (v >= lo && v <= hi) has = true;
      }
      if (has) {
        EXPECT_TRUE(candidates.Test(b))
            << "false negative: block " << b << " range [" << lo << "," << hi
            << "]";
      }
    }
  }
}

// Property: second-level search returns exactly the in-range positions.
TEST(LayeredIndexTest, SecondLevelExactProperty) {
  Random rng(7);
  LayeredIndexOptions options;
  options.histogram_buckets = 16;
  LayeredIndex index("p", options, AmountExtractor());
  std::vector<int64_t> values;
  std::vector<Transaction> txns;
  for (int i = 0; i < 500; i++) {
    int64_t v = static_cast<int64_t>(rng.Uniform(1000));
    values.push_back(v);
    txns.push_back(MakeTxn("donate", "a", i, {Value::Int(v)}));
  }
  ASSERT_TRUE(index.AddBlock(MakeBlockOf(0, std::move(txns))).ok());
  for (int q = 0; q < 50; q++) {
    int64_t lo = static_cast<int64_t>(rng.Uniform(1000));
    int64_t hi = lo + static_cast<int64_t>(rng.Uniform(100));
    Value vlo = Value::Int(lo), vhi = Value::Int(hi);
    std::vector<TxnPointer> pointers;
    ASSERT_TRUE(index.SearchBlock(0, &vlo, &vhi, &pointers).ok());
    std::set<uint32_t> got;
    for (const auto& pointer : pointers) got.insert(pointer.index);
    std::set<uint32_t> expected;
    for (uint32_t i = 0; i < values.size(); i++) {
      if (values[i] >= lo && values[i] <= hi) expected.insert(i);
    }
    EXPECT_EQ(got, expected);
  }
}

}  // namespace
}  // namespace sebdb
