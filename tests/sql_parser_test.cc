// Tests for the lexer and parser, covering every statement form in the
// paper's Table II (Q1–Q7) plus error cases.
#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "sql/parser.h"

namespace sebdb {
namespace {

TEST(LexerTest, BasicTokens) {
  std::vector<Token> tokens;
  ASSERT_TRUE(
      Tokenize("SELECT * FROM donate WHERE amount >= 10.5", &tokens).ok());
  ASSERT_EQ(tokens.size(), 9u);  // incl. kEnd
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));
  EXPECT_TRUE(tokens[1].IsSymbol("*"));
  EXPECT_TRUE(tokens[2].IsKeyword("FROM"));
  EXPECT_EQ(tokens[3].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[3].text, "donate");
  EXPECT_TRUE(tokens[5].type == TokenType::kIdentifier);
  EXPECT_TRUE(tokens[6].IsOperator(">="));
  EXPECT_EQ(tokens[7].type, TokenType::kNumber);
  EXPECT_EQ(tokens[8].type, TokenType::kEnd);
}

TEST(LexerTest, StringsAndEscapes) {
  std::vector<Token> tokens;
  ASSERT_TRUE(Tokenize("'it''s' \"double\"", &tokens).ok());
  EXPECT_EQ(tokens[0].text, "it's");
  EXPECT_EQ(tokens[1].text, "double");
  EXPECT_FALSE(Tokenize("'unterminated", &tokens).ok());
}

TEST(LexerTest, OperatorsAndParameters) {
  std::vector<Token> tokens;
  ASSERT_TRUE(Tokenize("a <> b != c <= d ? ;", &tokens).ok());
  EXPECT_TRUE(tokens[1].IsOperator("!="));  // <> normalized
  EXPECT_TRUE(tokens[3].IsOperator("!="));
  EXPECT_TRUE(tokens[5].IsOperator("<="));
  EXPECT_EQ(tokens[7].type, TokenType::kParameter);
  EXPECT_TRUE(Tokenize("a ! b", &tokens).IsInvalidArgument());
  EXPECT_TRUE(Tokenize("a # b", &tokens).IsInvalidArgument());
}

TEST(LexerTest, NegativeNumbers) {
  std::vector<Token> tokens;
  ASSERT_TRUE(Tokenize("VALUES (-5, -2.5)", &tokens).ok());
  EXPECT_EQ(tokens[2].text, "-5");
  EXPECT_EQ(tokens[2].type, TokenType::kInteger);
  EXPECT_EQ(tokens[4].text, "-2.5");
  EXPECT_EQ(tokens[4].type, TokenType::kNumber);
}

TEST(ParserTest, CreateTablePaperSyntax) {
  // The paper's example omits the TABLE keyword.
  StatementPtr stmt;
  ASSERT_TRUE(ParseStatement(
                  "CREATE Donate (donor string, project string, amount "
                  "decimal)",
                  &stmt)
                  .ok());
  const auto& create = std::get<CreateTableStmt>(stmt->node);
  EXPECT_EQ(create.table, "donate");
  ASSERT_EQ(create.columns.size(), 3u);
  EXPECT_EQ(create.columns[0].name, "donor");
  EXPECT_EQ(create.columns[2].type, ValueType::kDecimal);

  // With TABLE is fine too.
  ASSERT_TRUE(
      ParseStatement("CREATE TABLE t (a int, b timestamp);", &stmt).ok());
}

TEST(ParserTest, CreateIndexVariants) {
  StatementPtr stmt;
  ASSERT_TRUE(ParseStatement("CREATE INDEX ON donate(amount)", &stmt).ok());
  auto* index = std::get_if<CreateIndexStmt>(&stmt->node);
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->table, "donate");
  EXPECT_EQ(index->column, "amount");
  EXPECT_FALSE(index->discrete);

  ASSERT_TRUE(
      ParseStatement("CREATE DISCRETE INDEX ON t(organization)", &stmt).ok());
  EXPECT_TRUE(std::get<CreateIndexStmt>(stmt->node).discrete);

  ASSERT_TRUE(ParseStatement("CREATE LAYERED INDEX ON t(c)", &stmt).ok());
}

TEST(ParserTest, InsertQ1) {
  StatementPtr stmt;
  ASSERT_TRUE(
      ParseStatement("INSERT INTO donate VALUES(?,?,?);", &stmt).ok());
  const auto& insert = std::get<InsertStmt>(stmt->node);
  EXPECT_EQ(insert.table, "donate");
  ASSERT_EQ(insert.rows.size(), 1u);
  ASSERT_EQ(insert.rows[0].size(), 3u);
  EXPECT_EQ(std::get<Parameter>(insert.rows[0][0]->node).index, 0);
  EXPECT_EQ(std::get<Parameter>(insert.rows[0][2]->node).index, 2);

  ASSERT_TRUE(ParseStatement(
                  "INSERT INTO Donate VALUES ('Jack', 'Education', 100)",
                  &stmt)
                  .ok());
  const auto& literal_insert = std::get<InsertStmt>(stmt->node);
  EXPECT_EQ(
      std::get<Literal>(literal_insert.rows[0][0]->node).value.AsString(),
      "Jack");
  EXPECT_EQ(std::get<Literal>(literal_insert.rows[0][2]->node).value.AsInt(),
            100);

  // Multi-row insert.
  ASSERT_TRUE(
      ParseStatement("INSERT INTO t VALUES (1), (2), (3)", &stmt).ok());
  EXPECT_EQ(std::get<InsertStmt>(stmt->node).rows.size(), 3u);
}

TEST(ParserTest, TraceQ2AndQ3) {
  StatementPtr stmt;
  ASSERT_TRUE(ParseStatement("TRACE OPERATOR = 'org1';", &stmt).ok());
  const auto& q2 = std::get<TraceStmt>(stmt->node);
  EXPECT_FALSE(q2.window.has_value());
  ASSERT_NE(q2.operator_id, nullptr);
  EXPECT_EQ(q2.operation, nullptr);

  ASSERT_TRUE(ParseStatement(
                  "TRACE [100, 200] OPERATOR = 'org1', OPERATION = "
                  "'transfer';",
                  &stmt)
                  .ok());
  const auto& q3 = std::get<TraceStmt>(stmt->node);
  ASSERT_TRUE(q3.window.has_value());
  ASSERT_NE(q3.operator_id, nullptr);
  ASSERT_NE(q3.operation, nullptr);

  EXPECT_FALSE(ParseStatement("TRACE [1, 2]", &stmt).ok());  // no dimension
}

TEST(ParserTest, RangeSelectQ4) {
  StatementPtr stmt;
  ASSERT_TRUE(ParseStatement(
                  "SELECT * FROM donate WHERE amount BETWEEN ? AND ?;", &stmt)
                  .ok());
  const auto& select = std::get<SelectStmt>(stmt->node);
  EXPECT_TRUE(select.star);
  ASSERT_EQ(select.tables.size(), 1u);
  EXPECT_EQ(select.tables[0].name, "donate");
  ASSERT_NE(select.where, nullptr);
  const auto& between = std::get<BetweenExpr>(select.where->node);
  EXPECT_EQ(between.column.column, "amount");
}

TEST(ParserTest, OnChainJoinQ5) {
  StatementPtr stmt;
  ASSERT_TRUE(ParseStatement(
                  "SELECT * FROM transfer, distribute ON "
                  "transfer.organization = distribute.organization;",
                  &stmt)
                  .ok());
  const auto& select = std::get<SelectStmt>(stmt->node);
  ASSERT_EQ(select.tables.size(), 2u);
  EXPECT_FALSE(select.tables[0].offchain);
  ASSERT_TRUE(select.join.has_value());
  EXPECT_EQ(select.join->left.table, "transfer");
  EXPECT_EQ(select.join->right.column, "organization");
}

TEST(ParserTest, OnOffJoinQ6) {
  StatementPtr stmt;
  ASSERT_TRUE(ParseStatement(
                  "SELECT * FROM onchain.distribute, offchain.donorinfo ON "
                  "distribute.donee = donorinfo.donee;",
                  &stmt)
                  .ok());
  const auto& select = std::get<SelectStmt>(stmt->node);
  ASSERT_EQ(select.tables.size(), 2u);
  EXPECT_FALSE(select.tables[0].offchain);
  EXPECT_EQ(select.tables[0].name, "distribute");
  EXPECT_TRUE(select.tables[1].offchain);
  EXPECT_EQ(select.tables[1].name, "donorinfo");
}

TEST(ParserTest, GetBlockQ7) {
  StatementPtr stmt;
  ASSERT_TRUE(ParseStatement("GET BLOCK ID=?;", &stmt).ok());
  EXPECT_EQ(std::get<GetBlockStmt>(stmt->node).by, GetBlockStmt::By::kId);
  ASSERT_TRUE(ParseStatement("GET BLOCK TID = 42", &stmt).ok());
  EXPECT_EQ(std::get<GetBlockStmt>(stmt->node).by, GetBlockStmt::By::kTid);
  ASSERT_TRUE(ParseStatement("GET BLOCK TS = 1000", &stmt).ok());
  EXPECT_EQ(std::get<GetBlockStmt>(stmt->node).by, GetBlockStmt::By::kTs);
  EXPECT_FALSE(ParseStatement("GET BLOCK HASH = 1", &stmt).ok());
}

TEST(ParserTest, SelectWithWindowAndProjection) {
  StatementPtr stmt;
  ASSERT_TRUE(ParseStatement(
                  "SELECT donor, amount FROM donate WHERE amount > 10 "
                  "WINDOW [0, 1000]",
                  &stmt)
                  .ok());
  const auto& select = std::get<SelectStmt>(stmt->node);
  EXPECT_FALSE(select.star);
  ASSERT_EQ(select.projection.size(), 2u);
  EXPECT_EQ(select.projection[1].column, "amount");
  EXPECT_TRUE(select.window.has_value());
}

TEST(ParserTest, WherePrecedenceAndOr) {
  StatementPtr stmt;
  ASSERT_TRUE(ParseStatement(
                  "SELECT * FROM t WHERE a = 1 AND b = 2 OR c = 3", &stmt)
                  .ok());
  const auto& select = std::get<SelectStmt>(stmt->node);
  const auto& top = std::get<BinaryExpr>(select.where->node);
  EXPECT_EQ(top.op, BinaryOp::kOr);  // OR binds loosest
  const auto& left = std::get<BinaryExpr>(top.left->node);
  EXPECT_EQ(left.op, BinaryOp::kAnd);

  ASSERT_TRUE(ParseStatement(
                  "SELECT * FROM t WHERE a = 1 AND (b = 2 OR c = 3)", &stmt)
                  .ok());
  const auto& p = std::get<SelectStmt>(stmt->node);
  EXPECT_EQ(std::get<BinaryExpr>(p.where->node).op, BinaryOp::kAnd);
}

TEST(ParserTest, ExplainWraps) {
  StatementPtr stmt;
  ASSERT_TRUE(ParseStatement("EXPLAIN SELECT * FROM t", &stmt).ok());
  const auto& explain = std::get<ExplainStmt>(stmt->node);
  EXPECT_TRUE(std::holds_alternative<SelectStmt>(explain.inner->node));
}

TEST(ParserTest, ErrorsCarryPosition) {
  StatementPtr stmt;
  Status s = ParseStatement("SELECT FROM", &stmt);
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("position"), std::string::npos);
  EXPECT_FALSE(ParseStatement("", &stmt).ok());
  EXPECT_FALSE(ParseStatement("DELETE FROM t", &stmt).ok());
  EXPECT_FALSE(ParseStatement("SELECT * FROM t extra garbage", &stmt).ok());
  EXPECT_FALSE(ParseStatement("INSERT INTO t VALUES (1", &stmt).ok());
  EXPECT_FALSE(ParseStatement("CREATE t (a blob)", &stmt).ok());
  EXPECT_FALSE(
      ParseStatement("SELECT * FROM a, b ON a.x < b.y", &stmt).ok());
}

TEST(ParserTest, ParameterNumbering) {
  StatementPtr stmt;
  ASSERT_TRUE(ParseStatement(
                  "SELECT * FROM t WHERE a = ? AND b BETWEEN ? AND ?", &stmt)
                  .ok());
  const auto& select = std::get<SelectStmt>(stmt->node);
  const auto& top = std::get<BinaryExpr>(select.where->node);
  const auto& eq = std::get<BinaryExpr>(top.left->node);
  EXPECT_EQ(std::get<Parameter>(eq.right->node).index, 0);
  const auto& between = std::get<BetweenExpr>(top.right->node);
  EXPECT_EQ(std::get<Parameter>(between.lo->node).index, 1);
  EXPECT_EQ(std::get<Parameter>(between.hi->node).index, 2);
}

TEST(ParserTest, ExprToString) {
  StatementPtr stmt;
  ASSERT_TRUE(ParseStatement(
                  "SELECT * FROM t WHERE a.x = 'v' AND n BETWEEN 1 AND 2",
                  &stmt)
                  .ok());
  const auto& select = std::get<SelectStmt>(stmt->node);
  EXPECT_EQ(select.where->ToString(),
            "((a.x = 'v') AND (n BETWEEN 1 AND 2))");
}

}  // namespace
}  // namespace sebdb
