// Deterministic chaos matrix for the self-healing subsystem (DESIGN.md §12):
// 4-node Kafka clusters of full SebdbNodes driven through composed faults —
// on-disk corruption at the head / middle / tail of a non-tail segment, in
// the frame magic / length / payload / CRC fields; partitions overlapping
// repair; crash/restart mid-repair and mid-state-sync; and a checkpoint
// state-sync catch-up across a large gap. Every scenario must converge to
// the same tip, byte-identical query results and equal ALI digests, with
// zero acked-transaction loss; a corrupted node must open degraded and
// serve its verified prefix before repair completes. Zero-latency
// SimNetwork and explicit fault schedules keep the runs bounded; where a
// scenario asserts on repair counters, the victim runs without gossip and
// the test feeds height observations directly (gossip would race repair at
// message speed — a legal race, but not an observable one). Labeled `chaos`
// (also in the tsan/asan preset filters).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/coding.h"
#include "core/node.h"
#include "storage/file.h"
#include "tests/test_util.h"
#include "network/sim_network.h"

namespace sebdb {
namespace {

using testing_util::ScratchDir;

bool WaitForHeight(SebdbNode* node, uint64_t height, int timeout_ms = 30000) {
  for (int i = 0; i < timeout_ms / 10; i++) {
    if (node->chain().height() >= height) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

NodeOptions ChaosNodeOptions(const std::string& id, const std::string& dir,
                             const std::vector<std::string>& participants) {
  NodeOptions options;
  options.node_id = id;
  options.data_dir = dir + "/" + id;
  options.consensus = ConsensusKind::kKafka;
  options.participants = participants;
  options.consensus_options.max_batch_txns = 1;  // one block per insert
  options.consensus_options.batch_timeout_millis = 5;
  options.gossip.interval_millis = 10;
  // Small segments so a modest chain spans several files and the corruption
  // matrix has real non-tail segments to hit. Must be identical across
  // restarts: repair re-appends the same records, reproducing the layout.
  options.chain.store.segment_size = 2048;
  // Aggressive repair cadence keeps the scenarios bounded.
  options.repair.fetch_batch = 8;
  options.repair.request_timeout_millis = 100;
  options.repair.tick_interval_millis = 10;
  return options;
}

// Commits `count` single-row inserts through consensus on `node`, recording
// each acked value in `acked` (ExecuteSql returns only after the commit is
// locally applied — an OK status IS the ack).
void CommitInserts(SebdbNode* node, int64_t base, int count,
                   std::vector<int64_t>* acked) {
  ResultSet rs;
  for (int i = 0; i < count; i++) {
    const int64_t v = base + i;
    ASSERT_TRUE(
        node->ExecuteSql("INSERT INTO t VALUES (" + std::to_string(v) + ")",
                         {}, &rs)
            .ok())
        << "insert " << v;
    acked->push_back(v);
  }
}

// Zero acked-txn loss + byte-identical results: every node returns exactly
// the acked values (each exactly once) and the same ALI digest at the same
// height.
void ExpectConverged(std::vector<std::unique_ptr<SebdbNode>>& nodes,
                     const std::vector<int64_t>& acked) {
  uint64_t height = 0;
  for (auto& node : nodes) {
    height = std::max(height, node->chain().height());
  }
  for (auto& node : nodes) {
    ASSERT_TRUE(WaitForHeight(node.get(), height)) << node->node_id();
    EXPECT_EQ(node->chain().tip_hash(), nodes[0]->chain().tip_hash())
        << "fork: " << node->node_id();
  }
  const std::multiset<int64_t> expected(acked.begin(), acked.end());
  EXPECT_EQ(expected.size(), acked.size()) << "test bug: duplicate values";
  Hash256 reference_digest;
  ASSERT_TRUE(nodes[0]
                  ->AuthDigestTrace(/*by_sender=*/true, "n0", height,
                                    &reference_digest)
                  .ok());
  for (auto& node : nodes) {
    ResultSet rs;
    ASSERT_TRUE(node->ExecuteSql("SELECT v FROM t", {}, &rs).ok())
        << node->node_id();
    std::multiset<int64_t> got;
    for (const auto& row : rs.rows) got.insert(row[0].AsInt());
    EXPECT_EQ(got, expected) << "acked txn lost or duplicated on "
                             << node->node_id();
    Hash256 digest;
    ASSERT_TRUE(node->AuthDigestTrace(true, "n0", height, &digest).ok())
        << node->node_id();
    EXPECT_EQ(digest, reference_digest)
        << "ALI digest diverged on " << node->node_id();
  }
}

std::vector<std::string> SegmentFiles(const std::string& dir) {
  std::vector<std::string> files, segments;
  EXPECT_TRUE(ListDir(dir, &files).ok());
  for (const auto& f : files) {
    if (f.size() == 14 && f.rfind("seg_", 0) == 0 &&
        f.rfind(".blk") == 10) {
      segments.push_back(f);
    }
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

std::string ReadFileBytes(const std::string& path) {
  std::string bytes;
  FILE* f = fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return bytes;
  char buf[4096];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  fclose(f);
  return bytes;
}

// Byte offsets of every frame start in a segment image:
// [magic u32][len u32][payload][crc u32].
std::vector<size_t> FrameOffsets(const std::string& image) {
  std::vector<size_t> offsets;
  size_t offset = 0;
  while (offset + 12 <= image.size()) {
    offsets.push_back(offset);
    uint32_t len = DecodeFixed32(image.data() + offset + 4);
    offset += 8 + len + 4;
  }
  return offsets;
}

enum class Field { kMagic, kLen, kPayload, kCrc };

const char* FieldName(Field f) {
  switch (f) {
    case Field::kMagic: return "magic";
    case Field::kLen: return "len";
    case Field::kPayload: return "payload";
    case Field::kCrc: return "crc";
  }
  return "?";
}

// Position of the corrupted frame within the segment file.
enum class Position { kHead, kMiddle, kTail };

const char* PositionName(Position p) {
  switch (p) {
    case Position::kHead: return "head";
    case Position::kMiddle: return "middle";
    case Position::kTail: return "tail";
  }
  return "?";
}

// Flips one byte of the chosen field of the chosen frame in `path`.
void CorruptSegment(const std::string& path, Position position, Field field) {
  std::string image = ReadFileBytes(path);
  std::vector<size_t> frames = FrameOffsets(image);
  ASSERT_FALSE(frames.empty()) << path;
  size_t idx = 0;
  if (position == Position::kMiddle) idx = frames.size() / 2;
  if (position == Position::kTail) idx = frames.size() - 1;
  const size_t frame = frames[idx];
  const uint32_t len = DecodeFixed32(image.data() + frame + 4);
  size_t target = frame;
  switch (field) {
    case Field::kMagic: target = frame + 1; break;
    case Field::kLen: target = frame + 4; break;
    case Field::kPayload: target = frame + 8 + len / 2; break;
    case Field::kCrc: target = frame + 8 + len + 2; break;
  }
  ASSERT_LT(target, image.size()) << path;
  image[target] = static_cast<char>(image[target] ^ 0x40);
  FILE* f = fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(fwrite(image.data(), 1, image.size(), f), image.size());
  fclose(f);
}

// A 4-node cluster whose victim node (n3) gets stopped, corrupted on disk
// and restarted over the damaged directory. Removing the victim's
// checkpoint directory forces the reopen through the full segment scan — a
// checkpoint's trusted prefix would otherwise skip the bytes we just
// damaged (corruption *of* checkpoint state is exercised by the state-sync
// scenarios, which replace the checkpoint wholesale after hash checks).
class ChaosCluster {
 public:
  explicit ChaosCluster(const std::string& tag, bool victim_gossip = true)
      : dir_(tag), victim_gossip_(victim_gossip) {
    for (const auto& id : participants_) {
      EXPECT_TRUE(keystore_.AddIdentity(id, "secret-" + id).ok());
    }
  }

  virtual ~ChaosCluster() {
    for (auto& node : nodes_) {
      if (node != nullptr) node->Stop();
    }
  }

  void StartAll(SimNetwork* net) {
    for (const auto& id : participants_) StartNode(net, id);
    ResultSet rs;
    ASSERT_TRUE(nodes_[0]->ExecuteSql("CREATE t (v int)", {}, &rs).ok());
    for (auto& node : nodes_) {
      ASSERT_TRUE(WaitForHeight(node.get(), 2)) << node->node_id();
    }
  }

  void StartNode(SimNetwork* net, const std::string& id) {
    NodeOptions options = ChaosNodeOptions(id, dir_.path(), participants_);
    if (id == "n3" && !victim_gossip_) options.enable_gossip = false;
    Customize(&options);
    auto node = std::make_unique<SebdbNode>(options, &keystore_, nullptr);
    ASSERT_TRUE(node->Start(net).ok()) << id;
    const size_t idx = static_cast<size_t>(id.back() - '0');
    if (nodes_.size() <= idx) nodes_.resize(idx + 1);
    nodes_[idx] = std::move(node);
  }

  virtual void Customize(NodeOptions* options) { (void)options; }

  /// Stops n3, applies `corrupt` to its data dir, restarts it degraded.
  void CorruptAndRestartVictim(SimNetwork* net, Position position,
                               Field field, size_t segment_index = 1) {
    nodes_[3]->Stop();
    std::vector<std::string> segments = SegmentFiles(node_dir("n3"));
    ASSERT_GT(segments.size(), segment_index + 1)
        << "workload too small: corrupted segment must not be the tail";
    CorruptSegment(node_dir("n3") + "/" + segments[segment_index], position,
                   field);
    RemoveDirRecursive(node_dir("n3") + "/checkpoints");
    StartNode(net, "n3");
  }

  SebdbNode* node(size_t i) { return nodes_[i].get(); }
  KeyStore* keystore() { return &keystore_; }
  std::vector<std::unique_ptr<SebdbNode>>& nodes() { return nodes_; }
  const std::string& dir() const { return dir_.path(); }
  std::string node_dir(const std::string& id) const {
    return dir_.path() + "/" + id;
  }
  std::vector<int64_t>& acked() { return acked_; }

 protected:
  ScratchDir dir_;
  const bool victim_gossip_;
  KeyStore keystore_;
  const std::vector<std::string> participants_ = {"n0", "n1", "n2", "n3"};
  std::vector<std::unique_ptr<SebdbNode>> nodes_;
  std::vector<int64_t> acked_;
};

// ---- corruption matrix -----------------------------------------------------

// A degraded open must expose exactly the verified prefix — queryable, with
// height strictly below the peers' — and a subsequent repair-enabled
// restart must converge back with zero acked loss.
TEST(ChaosTest, DegradedOpenServesVerifiedPrefixThenRepairs) {
  SimNetwork net;
  ChaosCluster cluster("chaos_prefix");
  cluster.StartAll(&net);
  CommitInserts(cluster.node(0), 1000, 24, &cluster.acked());
  const uint64_t full_height = cluster.node(0)->chain().height();
  ASSERT_TRUE(WaitForHeight(cluster.node(3), full_height));

  cluster.node(3)->Stop();
  std::vector<std::string> segments = SegmentFiles(cluster.node_dir("n3"));
  ASSERT_GE(segments.size(), 3u) << "workload too small for the matrix";
  CorruptSegment(cluster.node_dir("n3") + "/" + segments[1],
                 Position::kMiddle, Field::kPayload);
  RemoveDirRecursive(cluster.node_dir("n3") + "/checkpoints");

  // Phase 1: reopen isolated (no gossip, no repair) and inspect the
  // degraded state before anyone can heal it.
  {
    NodeOptions isolated =
        ChaosNodeOptions("n3", cluster.dir(), {"n0", "n1", "n2", "n3"});
    isolated.enable_gossip = false;
    isolated.enable_repair = false;
    // Keep the degraded open from checkpointing its shortened chain: phase
    // 2 below must also open degraded (checkpoint restore would mask it).
    isolated.chain.checkpoint.checkpoint_on_close = false;
    SebdbNode degraded(isolated, cluster.keystore(), nullptr);
    ASSERT_TRUE(degraded.Start(&net).ok());
    const BlockStore::RecoveryStats recovery =
        degraded.chain().recovery_stats();
    EXPECT_TRUE(recovery.degraded);
    EXPECT_GE(recovery.segments_quarantined, 1u);
    const uint64_t degraded_height = degraded.chain().height();
    EXPECT_LT(degraded_height, full_height);
    EXPECT_GE(degraded_height, 1u);  // at least genesis survived
    // The verified prefix serves queries (fewer rows than acked, no error).
    ResultSet rs;
    ASSERT_TRUE(degraded.ExecuteSql("SELECT count(*) FROM t", {}, &rs).ok());
    EXPECT_LT(rs.rows[0][0].AsInt(),
              static_cast<int64_t>(cluster.acked().size()));
    degraded.Stop();
  }

  // Phase 2: restart with gossip + repair; the node refetches the missing
  // blocks from its peers and converges. (The quarantine itself already
  // happened in phase 1; this open resumes from the verified prefix.)
  cluster.StartNode(&net, "n3");
  ASSERT_TRUE(WaitForHeight(cluster.node(3), full_height));
  ExpectConverged(cluster.nodes(), cluster.acked());
}

// head/middle/tail frame × magic/len/payload/crc field, rotated so every
// position and every field is hit: each combination quarantines a chain
// suffix on reopen and peer-assisted block repair must restore convergence.
// The victim runs without gossip, so repair is provably the healer.
TEST(ChaosTest, CorruptionMatrixConverges) {
  SimNetwork net;
  ChaosCluster cluster("chaos_matrix", /*victim_gossip=*/false);
  cluster.StartAll(&net);
  CommitInserts(cluster.node(0), 2000, 24, &cluster.acked());

  const struct {
    Position position;
    Field field;
  } kMatrix[] = {
      {Position::kHead, Field::kMagic},
      {Position::kHead, Field::kPayload},
      {Position::kMiddle, Field::kLen},
      {Position::kMiddle, Field::kCrc},
      {Position::kTail, Field::kPayload},
      {Position::kTail, Field::kMagic},
  };

  int64_t next_value = 3000;
  for (const auto& combo : kMatrix) {
    SCOPED_TRACE(std::string(PositionName(combo.position)) + " frame, " +
                 FieldName(combo.field) + " field");
    ASSERT_TRUE(
        WaitForHeight(cluster.node(3), cluster.node(0)->chain().height()));
    cluster.CorruptAndRestartVictim(&net, combo.position, combo.field);

    const BlockStore::RecoveryStats recovery =
        cluster.node(3)->chain().recovery_stats();
    EXPECT_TRUE(recovery.degraded);
    EXPECT_GE(recovery.segments_quarantined, 1u);
    EXPECT_GT(recovery.bytes_quarantined, 0u);
    const uint64_t degraded_height = cluster.node(3)->chain().height();

    // While n3 is damaged, the healthy majority keeps committing (composed
    // load): those acks must survive repair too.
    CommitInserts(cluster.node(0), next_value, 2, &cluster.acked());
    next_value += 100;

    // Feed the height observation a gossip digest would normally deliver.
    const uint64_t target = cluster.node(0)->chain().height();
    cluster.node(3)->OnPeerAdvertisedHeight("n0", target);
    ASSERT_TRUE(WaitForHeight(cluster.node(3), target));
    const RepairStats rs = cluster.node(3)->repair_stats();
    EXPECT_GE(rs.blocks_repaired, target - degraded_height);
    EXPECT_GE(rs.repairs_completed, 1u);
    ExpectConverged(cluster.nodes(), cluster.acked());
  }
}

// Corruption + partition: the damaged node restarts behind a full
// partition, repair can reach nobody (its fetches and retries die on the
// downed links), and the heal must still converge it.
TEST(ChaosTest, PartitionDuringRepairStillConverges) {
  SimNetwork net;
  ChaosCluster cluster("chaos_partition");
  cluster.StartAll(&net);
  CommitInserts(cluster.node(0), 4000, 24, &cluster.acked());
  ASSERT_TRUE(
      WaitForHeight(cluster.node(3), cluster.node(0)->chain().height()));

  for (const auto& peer : {"n0", "n1", "n2"}) {
    net.SetLinkDown("n3", peer, true);
  }
  // Mid-frame of segment 0: quarantines most of the chain — close to the
  // biggest possible repair.
  cluster.CorruptAndRestartVictim(&net, Position::kMiddle, Field::kCrc,
                                  /*segment_index=*/0);
  EXPECT_TRUE(cluster.node(3)->chain().recovery_stats().degraded);
  // Commit through the partition; n3 must pick these up after the heal too.
  CommitInserts(cluster.node(0), 4100, 4, &cluster.acked());
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_LT(cluster.node(3)->chain().height(),
            cluster.node(0)->chain().height());
  for (const auto& peer : {"n0", "n1", "n2"}) {
    net.SetLinkDown("n3", peer, false);
  }
  ASSERT_TRUE(
      WaitForHeight(cluster.node(3), cluster.node(0)->chain().height()));
  ExpectConverged(cluster.nodes(), cluster.acked());
}

// Crash in the middle of a repair session: the half-repaired chain is a
// valid prefix (repair appends through the same durable path), so the next
// restart resumes from it and converges.
TEST(ChaosTest, CrashMidRepairThenConverges) {
  SimNetwork net;
  ChaosCluster cluster("chaos_midrepair");
  cluster.StartAll(&net);
  CommitInserts(cluster.node(0), 5000, 24, &cluster.acked());
  ASSERT_TRUE(
      WaitForHeight(cluster.node(3), cluster.node(0)->chain().height()));

  cluster.CorruptAndRestartVictim(&net, Position::kMiddle, Field::kPayload,
                                  /*segment_index=*/0);
  EXPECT_TRUE(cluster.node(3)->chain().recovery_stats().degraded);
  const uint64_t degraded_height = cluster.node(3)->chain().height();
  // Let repair make some progress, then kill the node mid-flight. (If
  // repair already finished, the scenario degenerates to a clean restart —
  // still a valid run, just a weaker one.)
  for (int i = 0; i < 500; i++) {
    if (cluster.node(3)->chain().height() > degraded_height) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  cluster.node(3)->Stop();

  cluster.StartNode(&net, "n3");
  ASSERT_TRUE(
      WaitForHeight(cluster.node(3), cluster.node(0)->chain().height()));
  ExpectConverged(cluster.nodes(), cluster.acked());
}

// ---- crash mid-parallel-apply ----------------------------------------------

// A cluster tuned so every node applies multi-transaction blocks through
// the wave scheduler with a nonzero simulated execute cost: a stop is
// likely to land while a block's waves are still in flight, interrupting
// the parallel apply pipeline mid-block.
class ParallelApplyCluster : public ChaosCluster {
 public:
  explicit ParallelApplyCluster(const std::string& tag)
      : ChaosCluster(tag) {}
  void Customize(NodeOptions* options) override {
    options->consensus_options.max_batch_txns = 8;  // multi-txn blocks
    options->consensus_options.batch_timeout_millis = 20;
    options->chain.execute_cost_micros = 500;  // keep waves in flight
  }
};

// Stopping a node while the scheduler is executing a block's waves must
// leave it restartable with the PR 6 recovery invariants intact: the commit
// point is the block append, so an interrupted apply either completed its
// block or never persisted it — the restart replays/repairs to the cluster
// tip with zero acked loss, identical tips and equal ALI digests. (If the
// stop happens to land between blocks, the scenario degenerates to a clean
// restart — still a valid run, just a weaker one.)
TEST(ChaosTest, CrashMidParallelApplyThenConverges) {
  SimNetwork net;
  ParallelApplyCluster cluster("chaos_midapply");
  cluster.StartAll(&net);

  // Submits `count` inserts concurrently so the broker cuts multi-txn
  // blocks, waits for every ack. Values are unique per call: each wave's
  // acks are recorded before the next begins.
  auto submit_wave = [&](int64_t base, int count) {
    std::atomic<int> pending{count};
    std::vector<Status> results(count);
    for (int i = 0; i < count; i++) {
      Transaction txn;
      ASSERT_TRUE(cluster.node(0)
                      ->MakeInsertTransaction("n0", "t",
                                              {Value::Int(base + i)}, &txn)
                      .ok());
      ASSERT_TRUE(cluster.node(0)
                      ->SubmitAsync(std::move(txn),
                                    [&results, &pending, i](Status s) {
                                      results[i] = std::move(s);
                                      pending.fetch_sub(1);
                                    })
                      .ok());
    }
    for (int i = 0; i < 3000 && pending.load() > 0; i++) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_EQ(pending.load(), 0);
    for (int i = 0; i < count; i++) {
      ASSERT_TRUE(results[i].ok()) << results[i].ToString();
      cluster.acked().push_back(base + i);
    }
  };

  submit_wave(9000, 8);
  ASSERT_TRUE(
      WaitForHeight(cluster.node(3), cluster.node(0)->chain().height()));

  // Continuous multi-txn load from a writer thread; stop the victim while
  // the pipeline is busy so the stop lands mid-apply.
  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    for (int w = 0; w < 6; w++) submit_wave(9100 + w * 10, 8);
    writer_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  cluster.node(3)->Stop();
  writer.join();
  ASSERT_TRUE(writer_done.load());

  cluster.StartNode(&net, "n3");
  ASSERT_TRUE(
      WaitForHeight(cluster.node(3), cluster.node(0)->chain().height()));
  ExpectConverged(cluster.nodes(), cluster.acked());

  // The restarted victim replayed through the scheduler, not a bypass.
  const TxnSchedulerStats stats = cluster.node(3)->apply_stats();
  EXPECT_GT(stats.blocks, 0u);
  EXPECT_GE(stats.waves, stats.blocks);
}

// ---- checkpoint state sync -------------------------------------------------

class StateSyncCluster : public ChaosCluster {
 public:
  explicit StateSyncCluster(const std::string& tag)
      : ChaosCluster(tag, /*victim_gossip=*/false) {}
  void Customize(NodeOptions* options) override {
    // Frequent checkpoints so a lagging peer always finds a recent one.
    options->chain.checkpoint.interval_blocks = 16;
    // A modest gap triggers state sync; big fetches keep the run bounded.
    options->repair.state_sync_gap = 40;
    options->repair.fetch_batch = 16;
  }
};

// A replica that fell a multi-checkpoint gap behind catches up by
// installing a peer checkpoint + bridge blocks instead of replaying the gap
// block by block — then a second outage kills it mid-state-sync and the
// next restart still converges with zero acked loss.
TEST(ChaosTest, StateSyncCatchUpAndCrashMidSync) {
  SimNetwork net;
  StateSyncCluster cluster("chaos_statesync");
  cluster.StartAll(&net);
  CommitInserts(cluster.node(0), 6000, 8, &cluster.acked());
  ASSERT_TRUE(
      WaitForHeight(cluster.node(3), cluster.node(0)->chain().height()));

  // Outage 1: n3 partitioned (kafka deliveries die on the downed links)
  // while the cluster commits far past the state-sync threshold and several
  // checkpoint intervals.
  for (const auto& peer : {"n0", "n1", "n2"}) {
    net.SetLinkDown("n3", peer, true);
  }
  CommitInserts(cluster.node(0), 7000, 70, &cluster.acked());
  const uint64_t lag_height = cluster.node(3)->chain().height();
  const uint64_t target = cluster.node(0)->chain().height();
  ASSERT_GE(target - lag_height, 40u);
  for (const auto& peer : {"n0", "n1", "n2"}) {
    net.SetLinkDown("n3", peer, false);
  }
  // The victim runs without gossip: hand it the height observation a digest
  // would normally carry, so the repair coordinator is provably the healer.
  cluster.node(3)->OnPeerAdvertisedHeight("n0", target);
  ASSERT_TRUE(WaitForHeight(cluster.node(3), target));
  const RepairStats rs = cluster.node(3)->repair_stats();
  EXPECT_GE(rs.state_syncs_started, 1u);
  EXPECT_GE(rs.state_syncs_completed, 1u);
  EXPECT_GE(rs.chunks_fetched, 1u);
  EXPECT_GT(rs.bytes_verified, 0u);
  const ChainManager::StateSyncStats ss =
      cluster.node(3)->state_sync_stats();
  EXPECT_GE(ss.installs, 1u);
  EXPECT_GT(ss.installed_height, lag_height);
  ExpectConverged(cluster.nodes(), cluster.acked());

  // Outage 2: same gap again, but kill n3 as soon as its catch-up session
  // starts. A half-fetched package is only installed after every hash
  // check passes, so the crash loses nothing.
  for (const auto& peer : {"n0", "n1", "n2"}) {
    net.SetLinkDown("n3", peer, true);
  }
  CommitInserts(cluster.node(0), 8000, 60, &cluster.acked());
  for (const auto& peer : {"n0", "n1", "n2"}) {
    net.SetLinkDown("n3", peer, false);
  }
  cluster.node(3)->OnPeerAdvertisedHeight(
      "n0", cluster.node(0)->chain().height());
  for (int i = 0; i < 1000; i++) {
    if (cluster.node(3)->repair()->active()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  cluster.node(3)->Stop();
  cluster.StartNode(&net, "n3");
  cluster.node(3)->OnPeerAdvertisedHeight(
      "n0", cluster.node(0)->chain().height());
  ASSERT_TRUE(
      WaitForHeight(cluster.node(3), cluster.node(0)->chain().height()));
  ExpectConverged(cluster.nodes(), cluster.acked());
}

}  // namespace
}  // namespace sebdb
