// Tests for the simulated network and gossip anti-entropy.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>

#include "common/coding.h"
#include "network/gossip.h"
#include "network/sim_network.h"

namespace sebdb {
namespace {

TEST(SimNetworkTest, DeliversInOrderWithZeroLatency) {
  SimNetwork net;
  std::vector<std::string> received;
  std::mutex mu;
  ASSERT_TRUE(net.Register("b", [&](const Message& m) {
                   std::lock_guard<std::mutex> lock(mu);
                   received.push_back(m.payload);
                 })
                  .ok());
  for (int i = 0; i < 100; i++) {
    net.Send({"t", "a", "b", std::to_string(i)});
  }
  net.DrainAll();
  ASSERT_EQ(received.size(), 100u);
  for (int i = 0; i < 100; i++) EXPECT_EQ(received[i], std::to_string(i));
  EXPECT_EQ(net.stats().messages_delivered, 100u);
}

TEST(SimNetworkTest, UnknownDestinationDropped) {
  SimNetwork net;
  net.Send({"t", "a", "ghost", "x"});
  EXPECT_EQ(net.stats().messages_dropped, 1u);
  EXPECT_EQ(net.stats().unreachable_drops, 1u);
  EXPECT_EQ(net.stats().link_drops, 0u);
  EXPECT_EQ(net.stats().random_drops, 0u);
}

TEST(SimNetworkTest, Broadcast) {
  SimNetwork net;
  std::atomic<int> count{0};
  for (const char* id : {"a", "b", "c"}) {
    ASSERT_TRUE(
        net.Register(id, [&](const Message&) { count++; }).ok());
  }
  net.Broadcast("a", "t", "hello");
  net.DrainAll();
  EXPECT_EQ(count.load(), 2);  // everyone but the sender
  EXPECT_EQ(net.Nodes().size(), 3u);
}

TEST(SimNetworkTest, LinkDownPartitions) {
  SimNetwork net;
  std::atomic<int> b_received{0};
  ASSERT_TRUE(net.Register("a", [](const Message&) {}).ok());
  ASSERT_TRUE(net.Register("b", [&](const Message&) { b_received++; }).ok());
  net.SetLinkDown("a", "b", true);
  net.Send({"t", "a", "b", "x"});
  net.DrainAll();
  EXPECT_EQ(b_received.load(), 0);
  EXPECT_EQ(net.stats().messages_dropped, 1u);
  EXPECT_EQ(net.stats().link_drops, 1u);
  EXPECT_EQ(net.stats().random_drops, 0u);
  net.SetLinkDown("b", "a", false);  // order-insensitive
  net.Send({"t", "a", "b", "x"});
  net.DrainAll();
  EXPECT_EQ(b_received.load(), 1);
}

TEST(SimNetworkTest, DropRateLosesMessages) {
  SimNetworkOptions options;
  options.drop_rate = 1.0;
  SimNetwork net(options);
  std::atomic<int> received{0};
  ASSERT_TRUE(net.Register("b", [&](const Message&) { received++; }).ok());
  for (int i = 0; i < 10; i++) net.Send({"t", "a", "b", "x"});
  net.DrainAll();
  EXPECT_EQ(received.load(), 0);
  EXPECT_EQ(net.stats().messages_dropped, 10u);
  EXPECT_EQ(net.stats().random_drops, 10u);
  EXPECT_EQ(net.stats().link_drops, 0u);
}

TEST(SimNetworkTest, LatencyDelaysDelivery) {
  SimNetworkOptions options;
  options.min_latency_micros = 2000;
  options.max_latency_micros = 4000;
  SimNetwork net(options);
  std::atomic<bool> got{false};
  ASSERT_TRUE(net.Register("b", [&](const Message&) { got = true; }).ok());
  auto start = std::chrono::steady_clock::now();
  net.Send({"t", "a", "b", "x"});
  net.DrainAll();
  auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  EXPECT_TRUE(got.load());
  EXPECT_GE(elapsed, 1500);
}

TEST(SimNetworkTest, UnregisterStopsDelivery) {
  SimNetwork net;
  std::atomic<int> received{0};
  ASSERT_TRUE(net.Register("b", [&](const Message&) { received++; }).ok());
  ASSERT_TRUE(net.Unregister("b").ok());
  EXPECT_TRUE(net.Unregister("b").IsNotFound());
  net.Send({"t", "a", "b", "x"});
  EXPECT_EQ(received.load(), 0);
}

TEST(SimNetworkTest, DuplicateRegistrationFails) {
  SimNetwork net;
  ASSERT_TRUE(net.Register("a", [](const Message&) {}).ok());
  EXPECT_TRUE(
      net.Register("a", [](const Message&) {}).IsInvalidArgument());
}

TEST(SimNetworkTest, QueueCapShedsOldestFirst) {
  SimNetworkOptions options;
  options.max_queue_per_endpoint = 5;
  // Fixed latency holds every message in the queue long enough for the
  // sends below to overflow it deterministically.
  options.min_latency_micros = 100000;
  options.max_latency_micros = 100000;
  SimNetwork net(options);
  std::vector<std::string> received;
  std::mutex mu;
  ASSERT_TRUE(net.Register("b", [&](const Message& m) {
                   std::lock_guard<std::mutex> lock(mu);
                   received.push_back(m.payload);
                 })
                  .ok());
  for (int i = 0; i < 10; i++) {
    net.Send({"t", "a", "b", std::to_string(i)});
  }
  net.DrainAll();
  // The five oldest were shed; the newest five survive, in order.
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(received.size(), 5u);
  for (int i = 0; i < 5; i++) EXPECT_EQ(received[i], std::to_string(i + 5));
  NetworkStats stats = net.stats();
  EXPECT_EQ(stats.overflow_drops, 5u);
  EXPECT_EQ(stats.messages_dropped, 5u);  // attributed per cause
}

TEST(SimNetworkTest, GossipQueueCapShedsGossipOnly) {
  SimNetworkOptions options;
  options.max_gossip_queue_per_endpoint = 2;
  options.min_latency_micros = 100000;
  options.max_latency_micros = 100000;
  SimNetwork net(options);
  std::vector<std::string> received;
  std::mutex mu;
  ASSERT_TRUE(net.Register("b", [&](const Message& m) {
                   std::lock_guard<std::mutex> lock(mu);
                   received.push_back(m.type + ":" + m.payload);
                 })
                  .ok());
  net.Send({"rpc.request", "a", "b", "m0"});
  net.Send({"gossip.push", "a", "b", "g0"});
  net.Send({"gossip.push", "a", "b", "g1"});
  net.Send({"gossip.push", "a", "b", "g2"});  // over the cap: g0 shed
  net.DrainAll();
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(received.size(), 3u);
  // Non-gossip traffic is untouched; the oldest gossip entry was shed
  // (anti-entropy re-requests whatever went missing).
  EXPECT_EQ(received[0], "rpc.request:m0");
  EXPECT_EQ(received[1], "gossip.push:g1");
  EXPECT_EQ(received[2], "gossip.push:g2");
  EXPECT_EQ(net.stats().overflow_drops, 1u);
}

// In-memory chain for gossip tests.
class FakeChain : public GossipDelegate {
 public:
  uint64_t ChainHeight() override {
    std::lock_guard<std::mutex> lock(mu_);
    return records_.size();
  }
  Status GetBlockRecord(BlockId height, std::string* record) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (height >= records_.size()) return Status::NotFound("no block");
    *record = records_[height];
    return Status::OK();
  }
  Status ApplyBlockRecord(BlockId height, const std::string& record) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (height != records_.size()) {
      return Status::InvalidArgument("out of order");
    }
    records_.push_back(record);
    return Status::OK();
  }
  void Seed(int n, const std::string& prefix) {
    std::lock_guard<std::mutex> lock(mu_);
    for (int i = 0; i < n; i++) {
      records_.push_back(prefix + std::to_string(i));
    }
  }
  std::vector<std::string> records() {
    std::lock_guard<std::mutex> lock(mu_);
    return records_;
  }

 private:
  std::mutex mu_;
  std::vector<std::string> records_;
};

TEST(GossipTest, LaggingPeerCatchesUp) {
  SimNetwork net;
  FakeChain chain_a, chain_b;
  chain_a.Seed(10, "blk");

  GossipOptions options;
  options.max_blocks_per_pull = 3;  // force multiple pull rounds
  GossipAgent agent_a("a", &net, &chain_a, {"b"}, options);
  GossipAgent agent_b("b", &net, &chain_b, {"a"}, options);
  ASSERT_TRUE(
      net.Register("a", [&](const Message& m) { agent_a.HandleMessage(m); })
          .ok());
  ASSERT_TRUE(
      net.Register("b", [&](const Message& m) { agent_b.HandleMessage(m); })
          .ok());

  // One digest round from a is enough: b pulls repeatedly until level.
  agent_a.RunRound();
  net.DrainAll();
  EXPECT_EQ(chain_b.ChainHeight(), 10u);
  EXPECT_EQ(chain_b.records(), chain_a.records());
}

TEST(GossipTest, PushBlockPropagatesEagerly) {
  SimNetwork net;
  FakeChain chain_a, chain_b;
  GossipAgent agent_a("a", &net, &chain_a, {"b"});
  GossipAgent agent_b("b", &net, &chain_b, {"a"});
  ASSERT_TRUE(
      net.Register("a", [&](const Message& m) { agent_a.HandleMessage(m); })
          .ok());
  ASSERT_TRUE(
      net.Register("b", [&](const Message& m) { agent_b.HandleMessage(m); })
          .ok());

  chain_a.Seed(1, "x");
  agent_a.PushBlock(0, chain_a.records()[0]);
  net.DrainAll();
  EXPECT_EQ(chain_b.ChainHeight(), 1u);
}

TEST(GossipTest, BidirectionalConvergence) {
  // a knows more; digest from the *lagging* side must also converge, via
  // the "peer is behind" re-digest path.
  SimNetwork net;
  FakeChain chain_a, chain_b;
  chain_a.Seed(5, "blk");
  GossipAgent agent_a("a", &net, &chain_a, {"b"});
  GossipAgent agent_b("b", &net, &chain_b, {"a"});
  ASSERT_TRUE(
      net.Register("a", [&](const Message& m) { agent_a.HandleMessage(m); })
          .ok());
  ASSERT_TRUE(
      net.Register("b", [&](const Message& m) { agent_b.HandleMessage(m); })
          .ok());
  agent_b.RunRound();  // lagging node advertises its (lower) height
  net.DrainAll();
  EXPECT_EQ(chain_b.ChainHeight(), 5u);
}

TEST(GossipTest, LostPullIsRetriedWithBackoff) {
  SimNetwork net;
  FakeChain chain_a, chain_b;
  chain_a.Seed(10, "blk");
  GossipOptions options;
  options.pull_retry_initial_millis = 20;
  GossipAgent agent_a("a", &net, &chain_a, {"b"}, options);
  GossipAgent agent_b("b", &net, &chain_b, {"a"}, options);
  ASSERT_TRUE(
      net.Register("a", [&](const Message& m) { agent_a.HandleMessage(m); })
          .ok());
  ASSERT_TRUE(
      net.Register("b", [&](const Message& m) { agent_b.HandleMessage(m); })
          .ok());

  // b hears that a is at height 10, but the partition swallows its pull.
  net.SetLinkDown("a", "b", true);
  std::string digest;
  PutVarint64(&digest, 10);
  agent_b.HandleMessage(Message{"gossip.digest", "a", "b", digest});
  net.DrainAll();
  EXPECT_EQ(chain_b.ChainHeight(), 0u);
  EXPECT_GE(net.stats().link_drops, 1u);

  // Past the backoff window, the next round re-issues the pull (still
  // dropped here, but counted).
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  agent_b.RunRound();
  net.DrainAll();
  EXPECT_GE(agent_b.pull_retries(), 1u);
  EXPECT_EQ(chain_b.ChainHeight(), 0u);

  // Heal the link: retries (or the regular digest exchange) converge.
  net.SetLinkDown("a", "b", false);
  for (int i = 0; i < 200 && chain_b.ChainHeight() < 10; i++) {
    agent_b.RunRound();
    net.DrainAll();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(chain_b.ChainHeight(), 10u);
  EXPECT_EQ(chain_b.records(), chain_a.records());
}

TEST(GossipTest, BackgroundThreadConverges) {
  SimNetwork net;
  FakeChain chain_a, chain_b;
  chain_a.Seed(20, "blk");
  GossipOptions options;
  options.interval_millis = 5;
  GossipAgent agent_a("a", &net, &chain_a, {"b"}, options);
  GossipAgent agent_b("b", &net, &chain_b, {"a"}, options);
  ASSERT_TRUE(
      net.Register("a", [&](const Message& m) { agent_a.HandleMessage(m); })
          .ok());
  ASSERT_TRUE(
      net.Register("b", [&](const Message& m) { agent_b.HandleMessage(m); })
          .ok());
  agent_a.Start();
  agent_b.Start();
  for (int i = 0; i < 100 && chain_b.ChainHeight() < 20; i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  agent_a.Stop();
  agent_b.Stop();
  EXPECT_EQ(chain_b.ChainHeight(), 20u);
}

}  // namespace
}  // namespace sebdb
