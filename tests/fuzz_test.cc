// Randomized property tests: on randomly generated chains, every access
// path / join strategy must return exactly the same result multiset, and it
// must match a naive reference evaluation computed directly from the data.
// The MB-tree is additionally fuzzed with random ranges and random VO
// mutations (every mutation must be rejected or yield identical results).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "auth/mbtree.h"
#include "common/random.h"
#include "sql/executor.h"
#include "tests/test_util.h"

namespace sebdb {
namespace {

using testing_util::MakeTxn;
using testing_util::TestChain;

struct FuzzData {
  std::unique_ptr<TestChain> chain;
  std::unique_ptr<Executor> executor;
  // Ground truth: every donate (sender, amount) and per-table rows.
  std::vector<std::pair<std::string, int64_t>> donate_rows;
};

FuzzData BuildRandomChain(uint64_t seed, int num_blocks) {
  FuzzData data;
  data.chain = std::make_unique<TestChain>("fuzz");
  Schema donate;
  EXPECT_TRUE(Schema::Create("donate",
                             {{"donor", ValueType::kString},
                              {"amount", ValueType::kInt64}},
                             &donate)
                  .ok());
  Transaction schema_txn = Catalog::MakeSchemaTransaction(donate);
  schema_txn.set_sender("admin");
  schema_txn.set_ts(1);
  EXPECT_TRUE(data.chain->AppendBlock({std::move(schema_txn)}).ok());

  Random rng(seed);
  Timestamp ts = 100;
  for (int b = 0; b < num_blocks; b++) {
    std::vector<Transaction> txns;
    int count = 1 + static_cast<int>(rng.Uniform(30));
    for (int i = 0; i < count; i++) {
      ts += 1 + rng.Uniform(5);
      if (rng.Uniform(4) == 0) {
        // Noise from another table.
        txns.push_back(MakeTxn("other", "n" + std::to_string(rng.Uniform(5)),
                               ts, {Value::Int(1)}));
        continue;
      }
      std::string sender = "org" + std::to_string(rng.Uniform(6));
      int64_t amount = static_cast<int64_t>(rng.Uniform(1000));
      data.donate_rows.emplace_back(sender, amount);
      txns.push_back(MakeTxn("donate", sender, ts,
                             {Value::Str("d" + std::to_string(amount % 10)),
                              Value::Int(amount)}));
    }
    EXPECT_TRUE(data.chain->AppendBlock(std::move(txns)).ok());
  }
  data.executor = std::make_unique<Executor>(
      data.chain->store(), data.chain->indexes(), data.chain->catalog(),
      nullptr);
  ResultSet rs;
  EXPECT_TRUE(
      data.executor->ExecuteSql("CREATE INDEX ON donate(amount)", {}, &rs)
          .ok());
  return data;
}

std::multiset<std::string> Rendered(const ResultSet& result) {
  std::multiset<std::string> out;
  for (const auto& row : result.rows) {
    std::string line;
    for (const auto& v : row) line += v.ToString() + "|";
    out.insert(std::move(line));
  }
  return out;
}

class RangeFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RangeFuzzTest, AllPathsMatchReference) {
  uint64_t seed = GetParam();
  FuzzData data = BuildRandomChain(seed, 25);
  Random rng(seed * 31 + 7);

  for (int q = 0; q < 25; q++) {
    int64_t lo = static_cast<int64_t>(rng.Uniform(1000));
    int64_t hi = lo + static_cast<int64_t>(rng.Uniform(300));
    std::string sql = "SELECT senid, amount FROM donate WHERE amount BETWEEN " +
                      std::to_string(lo) + " AND " + std::to_string(hi);

    size_t expected = 0;
    for (const auto& [sender, amount] : data.donate_rows) {
      if (amount >= lo && amount <= hi) expected++;
    }

    std::multiset<std::string> reference;
    for (AccessPath path : {AccessPath::kScan, AccessPath::kBitmap,
                            AccessPath::kLayered, AccessPath::kAuto}) {
      ExecOptions options;
      options.access_path = path;
      ResultSet result;
      ASSERT_TRUE(data.executor->ExecuteSql(sql, options, &result).ok())
          << sql;
      ASSERT_EQ(result.num_rows(), expected)
          << sql << " path=" << static_cast<int>(path);
      auto rendered = Rendered(result);
      if (path == AccessPath::kScan) reference = std::move(rendered);
      else ASSERT_EQ(rendered, reference) << sql;
    }
  }
}

TEST_P(RangeFuzzTest, TracePathsMatchReference) {
  uint64_t seed = GetParam();
  FuzzData data = BuildRandomChain(seed, 20);

  for (int org = 0; org < 6; org++) {
    std::string sender = "org" + std::to_string(org);
    size_t expected = 0;
    for (const auto& [s, amount] : data.donate_rows) {
      if (s == sender) expected++;
    }
    std::string sql = "TRACE OPERATOR = '" + sender + "'";
    std::multiset<std::string> reference;
    for (AccessPath path :
         {AccessPath::kScan, AccessPath::kBitmap, AccessPath::kLayered}) {
      ExecOptions options;
      options.access_path = path;
      ResultSet result;
      ASSERT_TRUE(data.executor->ExecuteSql(sql, options, &result).ok());
      ASSERT_EQ(result.num_rows(), expected) << sender;
      auto rendered = Rendered(result);
      if (path == AccessPath::kScan) reference = std::move(rendered);
      else ASSERT_EQ(rendered, reference);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---- MB-tree fuzz ----

std::vector<MbTree::Entry> RandomEntries(Random* rng, int n) {
  std::vector<MbTree::Entry> entries;
  for (int i = 0; i < n; i++) {
    int64_t key = static_cast<int64_t>(rng->Uniform(200));
    entries.push_back({Value::Int(key), "rec:" + std::to_string(key) + ":" +
                                            std::to_string(i)});
  }
  std::sort(entries.begin(), entries.end(),
            [](const MbTree::Entry& a, const MbTree::Entry& b) {
              return a.key.CompareTotal(b.key) < 0;
            });
  return entries;
}

Status FuzzKeyFn(const Slice& record, Value* key) {
  // Tolerant of corrupted records (a mutated full record must yield an
  // error, not a crash — production clients decode a Transaction, which
  // also fails gracefully).
  std::string text = record.ToString();
  size_t first = text.find(':');
  size_t second = first == std::string::npos ? std::string::npos
                                             : text.find(':', first + 1);
  if (first == std::string::npos || second == std::string::npos) {
    return Status::Corruption("malformed fuzz record");
  }
  std::string digits = text.substr(first + 1, second - first - 1);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return Status::Corruption("malformed fuzz key");
  }
  *key = Value::Int(std::stoll(digits));
  return Status::OK();
}

class MbTreeFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MbTreeFuzzTest, RandomRangesAlwaysVerifyExactly) {
  Random rng(GetParam());
  auto entries = RandomEntries(&rng, 1 + static_cast<int>(rng.Uniform(400)));
  std::vector<int64_t> keys;
  for (const auto& entry : entries) keys.push_back(entry.key.AsInt());
  MbTree::Options options;
  options.fanout = 2 + rng.Uniform(20);
  auto tree = MbTree::Build(std::move(entries), options);

  for (int q = 0; q < 40; q++) {
    int64_t lo = static_cast<int64_t>(rng.Uniform(220)) - 10;
    int64_t hi = lo + static_cast<int64_t>(rng.Uniform(80));
    Value vlo = Value::Int(lo), vhi = Value::Int(hi);
    VerificationObject vo;
    ASSERT_TRUE(tree->ProveRange(&vlo, &vhi, &vo).ok());
    std::vector<std::string> records;
    ASSERT_TRUE(MbTree::VerifyRange(tree->root_hash(), vo, &vlo, &vhi,
                                    FuzzKeyFn, &records)
                    .ok())
        << "range [" << lo << "," << hi << "] fanout " << options.fanout;
    size_t expected = 0;
    for (int64_t k : keys) {
      if (k >= lo && k <= hi) expected++;
    }
    EXPECT_EQ(records.size(), expected);
  }
}

TEST_P(MbTreeFuzzTest, RandomMutationsNeverForgeResults) {
  Random rng(GetParam() * 101 + 13);
  auto entries = RandomEntries(&rng, 200);
  std::vector<int64_t> keys;
  for (const auto& entry : entries) keys.push_back(entry.key.AsInt());
  auto tree = MbTree::Build(std::move(entries));

  int rejected = 0, unchanged = 0;
  for (int trial = 0; trial < 60; trial++) {
    int64_t lo = static_cast<int64_t>(rng.Uniform(200));
    int64_t hi = lo + static_cast<int64_t>(rng.Uniform(50));
    Value vlo = Value::Int(lo), vhi = Value::Int(hi);
    VerificationObject vo;
    ASSERT_TRUE(tree->ProveRange(&vlo, &vhi, &vo).ok());

    // Random single-byte mutation of the serialized VO.
    std::string encoded;
    vo.EncodeTo(&encoded);
    if (encoded.empty()) continue;
    size_t pos = rng.Uniform(encoded.size());
    encoded[pos] = static_cast<char>(encoded[pos] ^ (1 + rng.Uniform(255)));

    Slice input(encoded);
    VerificationObject mutated;
    if (!VerificationObject::DecodeFrom(&input, &mutated).ok() ||
        !input.empty()) {
      rejected++;  // structurally invalid
      continue;
    }
    std::vector<std::string> records;
    Status s = MbTree::VerifyRange(tree->root_hash(), mutated, &vlo, &vhi,
                                   FuzzKeyFn, &records);
    if (!s.ok()) {
      rejected++;
      continue;
    }
    // Verification passed: the mutation must not have changed the result.
    size_t expected = 0;
    for (int64_t k : keys) {
      if (k >= lo && k <= hi) expected++;
    }
    ASSERT_EQ(records.size(), expected)
        << "mutation at byte " << pos << " forged a result set";
    unchanged++;
  }
  EXPECT_GT(rejected, 0);  // most random mutations must be caught
}

INSTANTIATE_TEST_SUITE_P(Seeds, MbTreeFuzzTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace sebdb
