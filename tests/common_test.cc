// Unit tests for src/common: Status, Slice, coding, SHA-256, CRC-32,
// Bitmap, LRU cache, clocks and the PRNG.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/bitmap.h"
#include "common/clock.h"
#include "common/coding.h"
#include "common/crc32.h"
#include "common/lru_cache.h"
#include "common/random.h"
#include "common/sha256.h"
#include "common/slice.h"
#include "common/status.h"

namespace sebdb {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_EQ(s.message(), "");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status s = Status::NotFound("block 17");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_FALSE(s.IsCorruption());
  EXPECT_EQ(s.ToString(), "NotFound: block 17");
  EXPECT_EQ(s.message(), "block 17");
}

TEST(StatusTest, CopyIsCheapAndShared) {
  Status a = Status::IOError("disk gone");
  Status b = a;
  EXPECT_TRUE(b.IsIOError());
  EXPECT_EQ(b.message(), "disk gone");
}

TEST(StatusTest, AllCodesRoundTrip) {
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::Busy("x").IsBusy());
  EXPECT_TRUE(Status::VerificationFailed("x").IsVerificationFailed());
  EXPECT_TRUE(Status::TimedOut("x").IsTimedOut());
}

TEST(SliceTest, BasicOps) {
  Slice s("hello");
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s[1], 'e');
  EXPECT_TRUE(s.starts_with("he"));
  EXPECT_FALSE(s.starts_with("el"));
  s.remove_prefix(2);
  EXPECT_EQ(s.ToString(), "llo");
}

TEST(SliceTest, Compare) {
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abcd").compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  EXPECT_TRUE(Slice("a") == Slice("a"));
  EXPECT_TRUE(Slice("a") != Slice("b"));
}

TEST(CodingTest, FixedRoundTrip) {
  std::string buf;
  PutFixed16(&buf, 0xbeef);
  PutFixed32(&buf, 0xdeadbeefu);
  PutFixed64(&buf, 0x0123456789abcdefull);
  Slice input(buf);
  uint16_t v16;
  uint32_t v32;
  uint64_t v64;
  ASSERT_TRUE(GetFixed16(&input, &v16));
  ASSERT_TRUE(GetFixed32(&input, &v32));
  ASSERT_TRUE(GetFixed64(&input, &v64));
  EXPECT_EQ(v16, 0xbeef);
  EXPECT_EQ(v32, 0xdeadbeefu);
  EXPECT_EQ(v64, 0x0123456789abcdefull);
  EXPECT_TRUE(input.empty());
}

TEST(CodingTest, VarintRoundTripEdgeValues) {
  const uint64_t cases[] = {0,       1,        127,        128,
                            16383,   16384,    UINT32_MAX, 1ull << 40,
                            UINT64_MAX};
  for (uint64_t v : cases) {
    std::string buf;
    PutVarint64(&buf, v);
    Slice input(buf);
    uint64_t got;
    ASSERT_TRUE(GetVarint64(&input, &got)) << v;
    EXPECT_EQ(got, v);
    EXPECT_TRUE(input.empty());
  }
}

TEST(CodingTest, Varint32RejectsOverflow) {
  std::string buf;
  PutVarint64(&buf, static_cast<uint64_t>(UINT32_MAX) + 1);
  Slice input(buf);
  uint32_t v;
  EXPECT_FALSE(GetVarint32(&input, &v));
}

TEST(CodingTest, TruncatedInputFails) {
  std::string buf;
  PutVarint64(&buf, 300);
  Slice input(buf.data(), 1);  // continuation byte without terminator
  uint64_t v;
  EXPECT_FALSE(GetVarint64(&input, &v));

  std::string fixed;
  PutFixed64(&fixed, 1);
  Slice short_input(fixed.data(), 7);
  uint64_t f;
  EXPECT_FALSE(GetFixed64(&short_input, &f));
}

TEST(CodingTest, ZigZagSigned) {
  const int64_t cases[] = {0, -1, 1, -2, 2, INT64_MIN, INT64_MAX, -123456789};
  for (int64_t v : cases) {
    std::string buf;
    PutVarSigned64(&buf, v);
    Slice input(buf);
    int64_t got;
    ASSERT_TRUE(GetVarSigned64(&input, &got));
    EXPECT_EQ(got, v);
  }
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
}

TEST(CodingTest, LengthPrefixed) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(1000, 'x'));
  Slice input(buf);
  Slice a, b, c;
  ASSERT_TRUE(GetLengthPrefixed(&input, &a));
  ASSERT_TRUE(GetLengthPrefixed(&input, &b));
  ASSERT_TRUE(GetLengthPrefixed(&input, &c));
  EXPECT_EQ(a.ToString(), "hello");
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(c.size(), 1000u);
}

// FIPS 180-4 test vectors.
TEST(Sha256Test, KnownVectors) {
  EXPECT_EQ(Sha256::Digest(Slice("abc")).ToHex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(Sha256::Digest(Slice("")).ToHex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(
      Sha256::Digest(
          Slice("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))
          .ToHex(),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string data(100000, 'z');
  Sha256 ctx;
  for (size_t i = 0; i < data.size(); i += 997) {
    ctx.Update(data.data() + i, std::min<size_t>(997, data.size() - i));
  }
  EXPECT_EQ(ctx.Finish(), Sha256::Digest(data));
}

TEST(Sha256Test, HexRoundTrip) {
  Hash256 h = Sha256::Digest(Slice("roundtrip"));
  Hash256 parsed;
  ASSERT_TRUE(Hash256::FromHex(h.ToHex(), &parsed));
  EXPECT_EQ(parsed, h);
  EXPECT_FALSE(Hash256::FromHex("zz", &parsed));
  EXPECT_FALSE(Hash256::FromHex(std::string(64, 'g'), &parsed));
}

TEST(Sha256Test, DigestPairDiffersFromConcatenationOrder) {
  Hash256 a = Sha256::Digest(Slice("a"));
  Hash256 b = Sha256::Digest(Slice("b"));
  EXPECT_NE(Sha256::DigestPair(a, b), Sha256::DigestPair(b, a));
}

TEST(Crc32Test, KnownVector) {
  // CRC-32 of "123456789" is 0xCBF43926.
  EXPECT_EQ(Crc32(Slice("123456789")), 0xcbf43926u);
  EXPECT_EQ(Crc32(Slice("")), 0u);
}

TEST(Crc32Test, Incremental) {
  uint32_t whole = Crc32(Slice("hello world"));
  EXPECT_NE(whole, Crc32(Slice("hello worlx")));
}

TEST(BitmapTest, SetTestClear) {
  Bitmap b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_FALSE(b.AnySet());
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 3u);
  b.Clear(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2u);
}

TEST(BitmapTest, SetGrowAndOutOfRangeTest) {
  Bitmap b;
  b.SetGrow(100);
  EXPECT_EQ(b.size(), 101u);
  EXPECT_TRUE(b.Test(100));
  EXPECT_FALSE(b.Test(5000));  // beyond size: false, no crash
}

TEST(BitmapTest, AndOrWithDifferentSizes) {
  Bitmap a(10), b(200);
  a.Set(3);
  a.Set(7);
  b.Set(3);
  b.Set(150);
  Bitmap both = a;
  both.And(b);
  EXPECT_TRUE(both.Test(3));
  EXPECT_FALSE(both.Test(7));
  EXPECT_FALSE(both.Test(150));
  EXPECT_EQ(both.size(), 200u);

  Bitmap either = a;
  either.Or(b);
  EXPECT_TRUE(either.Test(3));
  EXPECT_TRUE(either.Test(7));
  EXPECT_TRUE(either.Test(150));
}

TEST(BitmapTest, SetBitsAndNextSetBit) {
  Bitmap b(300);
  std::set<size_t> expected = {0, 63, 64, 65, 128, 299};
  for (size_t i : expected) b.Set(i);
  auto bits = b.SetBits();
  EXPECT_EQ(std::set<size_t>(bits.begin(), bits.end()), expected);
  EXPECT_EQ(b.NextSetBit(0), 0u);
  EXPECT_EQ(b.NextSetBit(1), 63u);
  EXPECT_EQ(b.NextSetBit(66), 128u);
  EXPECT_EQ(b.NextSetBit(300), Bitmap::npos);
}

TEST(BitmapTest, EncodeDecodeRoundTrip) {
  Bitmap b(77);
  b.Set(0);
  b.Set(76);
  b.Set(33);
  std::string buf;
  b.EncodeTo(&buf);
  Slice input(buf);
  Bitmap decoded;
  ASSERT_TRUE(Bitmap::DecodeFrom(&input, &decoded));
  EXPECT_EQ(decoded, b);
}

// Property test: bitmap behaves like std::vector<bool> under random ops.
TEST(BitmapTest, MatchesReferenceImplementation) {
  Random rng(42);
  Bitmap b(500);
  std::vector<bool> ref(500, false);
  for (int i = 0; i < 2000; i++) {
    size_t pos = rng.Uniform(500);
    if (rng.Uniform(2) == 0) {
      b.Set(pos);
      ref[pos] = true;
    } else {
      b.Clear(pos);
      ref[pos] = false;
    }
  }
  size_t ref_count = 0;
  for (size_t i = 0; i < 500; i++) {
    EXPECT_EQ(b.Test(i), ref[i]) << i;
    if (ref[i]) ref_count++;
  }
  EXPECT_EQ(b.Count(), ref_count);
}

TEST(LruCacheTest, InsertLookupEvict) {
  LruCache<int, std::string> cache(100);
  cache.Insert(1, std::make_shared<std::string>("one"), 40);
  cache.Insert(2, std::make_shared<std::string>("two"), 40);
  EXPECT_NE(cache.Lookup(1), nullptr);
  EXPECT_NE(cache.Lookup(2), nullptr);
  // Touch 1 so 2 is the LRU victim.
  cache.Lookup(1);
  cache.Insert(3, std::make_shared<std::string>("three"), 40);
  EXPECT_NE(cache.Lookup(1), nullptr);
  EXPECT_EQ(cache.Lookup(2), nullptr);
  EXPECT_NE(cache.Lookup(3), nullptr);
}

TEST(LruCacheTest, OversizedEntryNotCached) {
  LruCache<int, std::string> cache(10);
  cache.Insert(1, std::make_shared<std::string>("big"), 100);
  EXPECT_EQ(cache.Lookup(1), nullptr);
  EXPECT_EQ(cache.usage(), 0u);
}

TEST(LruCacheTest, ReplaceUpdatesCharge) {
  LruCache<int, int> cache(100);
  cache.Insert(1, std::make_shared<int>(1), 60);
  cache.Insert(1, std::make_shared<int>(2), 30);
  EXPECT_EQ(cache.usage(), 30u);
  EXPECT_EQ(*cache.Lookup(1), 2);
}

TEST(LruCacheTest, HitMissCounters) {
  LruCache<int, int> cache(100);
  cache.Insert(1, std::make_shared<int>(1), 10);
  cache.Lookup(1);
  cache.Lookup(2);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ClockTest, ManualClockAdvances) {
  ManualClock clock(1000);
  EXPECT_EQ(clock.NowMicros(), 1000);
  clock.AdvanceMicros(500);
  EXPECT_EQ(clock.NowMicros(), 1500);
  clock.SetMicros(42);
  EXPECT_EQ(clock.NowMicros(), 42);
  EXPECT_EQ(clock.NowMillis(), 0);
}

TEST(ClockTest, SystemClockMonotonicEnough) {
  auto clock = SystemClock::Default();
  Timestamp a = clock->NowMicros();
  Timestamp b = clock->NowMicros();
  EXPECT_LE(a, b);
  EXPECT_GT(a, 1600000000000000LL);  // after 2020
}

TEST(RandomTest, DeterministicWithSeed) {
  Random a(7), b(7);
  for (int i = 0; i < 100; i++) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, UniformInRange) {
  Random rng(1);
  for (int i = 0; i < 1000; i++) {
    uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
    int64_t r = rng.UniformRange(-5, 5);
    EXPECT_GE(r, -5);
    EXPECT_LE(r, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, GaussianClampedAndCentered) {
  Random rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; i++) {
    int64_t v = rng.GaussianInRange(500, 20, 0, 999);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 999);
    sum += static_cast<double>(v);
  }
  double mean = sum / 10000;
  EXPECT_NEAR(mean, 500, 2.0);
}

}  // namespace
}  // namespace sebdb
