// Full-node integration tests: a 4-node cluster over the simulated network
// running SQL writes through consensus, gossip replication to an observer,
// the thin-client authenticated protocol, access control and stored
// procedures.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/node.h"
#include "core/procedure.h"
#include "core/thin_client.h"
#include "tests/test_util.h"
#include "network/sim_network.h"

namespace sebdb {
namespace {

using testing_util::ScratchDir;

class ClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<ScratchDir>("cluster");
    participants_ = {"n0", "n1", "n2", "n3"};
    for (const auto& id : participants_) {
      ASSERT_TRUE(keystore_.AddIdentity(id, "secret-" + id).ok());
    }
    ASSERT_TRUE(keystore_.AddIdentity("org1", "secret-org1").ok());

    for (const auto& id : participants_) {
      NodeOptions options;
      options.node_id = id;
      options.data_dir = dir_->path() + "/" + id;
      options.consensus = ConsensusKind::kKafka;
      options.participants = participants_;
      options.consensus_options.max_batch_txns = 5;
      options.consensus_options.batch_timeout_millis = 20;
      options.gossip.interval_millis = 10;
      auto node = std::make_unique<SebdbNode>(options, &keystore_,
                                              &offchain_);
      ASSERT_TRUE(node->Start(&net_).ok()) << id;
      nodes_.push_back(std::move(node));
    }
  }

  void TearDown() override {
    for (auto& node : nodes_) node->Stop();
  }

  bool WaitForHeight(SebdbNode* node, uint64_t height, int timeout_ms = 10000) {
    for (int i = 0; i < timeout_ms / 10; i++) {
      if (node->chain().height() >= height) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  }

  SimNetwork net_;
  std::unique_ptr<ScratchDir> dir_;
  std::vector<std::string> participants_;
  KeyStore keystore_;
  OffchainDb offchain_;
  std::vector<std::unique_ptr<SebdbNode>> nodes_;
};

TEST_F(ClusterTest, CreateInsertSelectAcrossCluster) {
  ResultSet rs;
  ASSERT_TRUE(nodes_[0]
                  ->ExecuteSql(
                      "CREATE donate (donor string, project string, amount "
                      "decimal)",
                      {}, &rs)
                  .ok());
  // The schema reaches every node via consensus.
  for (auto& node : nodes_) {
    ASSERT_TRUE(WaitForHeight(node.get(), 2));
    EXPECT_TRUE(node->chain().catalog()->HasTable("donate"));
  }
  ASSERT_TRUE(nodes_[1]
                  ->ExecuteSql(
                      "INSERT INTO donate VALUES ('Jack', 'Education', 100)",
                      {}, &rs)
                  .ok());
  ASSERT_TRUE(nodes_[2]
                  ->ExecuteSql(
                      "INSERT INTO donate VALUES ('Mary', 'Health', 250.5)",
                      {}, &rs)
                  .ok());
  // nodes_[2] has both inserts (its own committed last); wait for everyone
  // to reach that height before querying elsewhere.
  uint64_t committed_height = nodes_[2]->chain().height();
  for (auto& node : nodes_) {
    ASSERT_TRUE(WaitForHeight(node.get(), committed_height));
  }
  // Query on a *different* node sees the committed data.
  ResultSet result;
  ASSERT_TRUE(nodes_[3]
                  ->ExecuteSql("SELECT donor, amount FROM donate "
                               "WHERE amount > 200",
                               {}, &result)
                  .ok());
  ASSERT_EQ(result.num_rows(), 1u);
  EXPECT_EQ(result.rows[0][0].AsString(), "Mary");
  // All chains converge to identical tips (synchronize on the max height —
  // any node may momentarily lead).
  uint64_t max_height = 0;
  for (auto& node : nodes_) {
    max_height = std::max(max_height, node->chain().height());
  }
  for (auto& node : nodes_) {
    ASSERT_TRUE(WaitForHeight(node.get(), max_height));
    EXPECT_EQ(node->chain().tip_hash(), nodes_[0]->chain().tip_hash());
  }
}

TEST_F(ClusterTest, InsertTypeCheckingAndWidening) {
  ResultSet rs;
  ASSERT_TRUE(
      nodes_[0]
          ->ExecuteSql("CREATE t (name string, amount decimal)", {}, &rs)
          .ok());
  // Int literal widens into the decimal column.
  ASSERT_TRUE(
      nodes_[0]->ExecuteSql("INSERT INTO t VALUES ('a', 5)", {}, &rs).ok());
  // Wrong arity / type rejected before consensus.
  EXPECT_TRUE(nodes_[0]
                  ->ExecuteSql("INSERT INTO t VALUES ('a')", {}, &rs)
                  .IsInvalidArgument());
  EXPECT_TRUE(nodes_[0]
                  ->ExecuteSql("INSERT INTO t VALUES (5, 'a')", {}, &rs)
                  .IsInvalidArgument());
  EXPECT_TRUE(nodes_[0]
                  ->ExecuteSql("INSERT INTO nope VALUES (1)", {}, &rs)
                  .IsNotFound());
}

TEST_F(ClusterTest, ObserverSyncsViaGossip) {
  ResultSet rs;
  ASSERT_TRUE(nodes_[0]->ExecuteSql("CREATE t (v int)", {}, &rs).ok());
  for (int i = 0; i < 3; i++) {
    ASSERT_TRUE(nodes_[0]
                    ->ExecuteSql("INSERT INTO t VALUES (" + std::to_string(i) +
                                     ")",
                                 {}, &rs)
                    .ok());
  }
  uint64_t height = nodes_[0]->chain().height();

  // An observer node: no consensus participation, gossip only.
  ASSERT_TRUE(keystore_.AddIdentity("observer", "secret-observer").ok());
  NodeOptions options;
  options.node_id = "observer";
  options.data_dir = dir_->path() + "/observer";
  options.participants = participants_;  // gossip peers
  options.gossip.interval_millis = 10;
  SebdbNode observer(options, &keystore_, nullptr);
  // Not in the participant list -> no consensus engine.
  NodeOptions observer_options = options;
  ASSERT_TRUE(observer.Start(&net_).ok());
  EXPECT_EQ(observer.consensus(), nullptr);
  ASSERT_TRUE(WaitForHeight(&observer, height));

  ResultSet result;
  ASSERT_TRUE(observer.ExecuteSql("SELECT * FROM t", {}, &result).ok());
  EXPECT_EQ(result.num_rows(), 3u);
  // Observer cannot write.
  EXPECT_TRUE(observer.ExecuteSql("INSERT INTO t VALUES (9)", {}, &result)
                  .IsNotSupported());
  observer.Stop();
}

TEST_F(ClusterTest, ThinClientAuthenticatedTrace) {
  ResultSet rs;
  ASSERT_TRUE(nodes_[0]->ExecuteSql("CREATE t (v int)", {}, &rs).ok());
  Transaction txn;
  for (int i = 0; i < 8; i++) {
    ASSERT_TRUE(nodes_[0]
                    ->MakeInsertTransaction("org1", "t", {Value::Int(i)}, &txn)
                    .ok());
    ASSERT_TRUE(nodes_[0]->SubmitAndWait(std::move(txn)).ok());
  }
  uint64_t height = nodes_[0]->chain().height();
  for (auto& node : nodes_) ASSERT_TRUE(WaitForHeight(node.get(), height));

  std::vector<SebdbNode*> fulls;
  for (auto& node : nodes_) fulls.push_back(node.get());
  ThinClient client(fulls);
  ASSERT_TRUE(client.SyncHeaders().ok());
  EXPECT_EQ(client.num_headers(), height);

  std::vector<Transaction> results;
  AuthQueryStats stats;
  ASSERT_TRUE(client
                  .AuthTraceQuery(/*by_sender=*/true, "org1",
                                  /*num_auxiliary=*/3,
                                  /*required_matching=*/2, &results, &stats)
                  .ok());
  EXPECT_EQ(results.size(), 8u);
  EXPECT_GT(stats.vo_bytes, 0u);

  // Basic approach agrees.
  std::vector<Transaction> basic;
  AuthQueryStats basic_stats;
  ASSERT_TRUE(client.BasicTraceQuery(true, "org1", &basic, &basic_stats).ok());
  EXPECT_EQ(basic.size(), 8u);
  EXPECT_GT(basic_stats.vo_bytes, stats.vo_bytes);  // whole blocks shipped

  // Windowed authenticated trace: restrict to the first half of commits.
  // Every node derives the same window bitmap (block timestamps are
  // deterministic), so the auxiliary digests still match.
  std::sort(results.begin(), results.end(),
            [](const Transaction& a, const Transaction& b) {
              return a.ts() < b.ts();
            });
  Timestamp start = 0;
  Timestamp end = results[3].ts();  // covers at least the first 4 txns
  std::vector<Transaction> windowed;
  ASSERT_TRUE(client
                  .AuthTraceQuery(true, "org1", 3, 2, &windowed, &stats,
                                  &start, &end)
                  .ok());
  EXPECT_GE(windowed.size(), 4u);
  EXPECT_LT(windowed.size(), 8u);
}

TEST_F(ClusterTest, ThinClientAuthenticatedTwoDimTrace) {
  ResultSet rs;
  ASSERT_TRUE(nodes_[0]->ExecuteSql("CREATE a (v int)", {}, &rs).ok());
  ASSERT_TRUE(nodes_[0]->ExecuteSql("CREATE b (v int)", {}, &rs).ok());
  // org1 sends 4 txns to table a and 3 to table b; n0 sends 2 to a.
  Transaction txn;
  auto submit = [&](const std::string& who, const std::string& table,
                    int v) {
    ASSERT_TRUE(
        nodes_[0]->MakeInsertTransaction(who, table, {Value::Int(v)}, &txn)
            .ok());
    ASSERT_TRUE(nodes_[0]->SubmitAndWait(std::move(txn)).ok());
  };
  for (int i = 0; i < 4; i++) submit("org1", "a", i);
  for (int i = 0; i < 3; i++) submit("org1", "b", i);
  for (int i = 0; i < 2; i++) submit("n0", "a", i);
  uint64_t height = nodes_[0]->chain().height();
  for (auto& node : nodes_) ASSERT_TRUE(WaitForHeight(node.get(), height));

  std::vector<SebdbNode*> fulls;
  for (auto& node : nodes_) fulls.push_back(node.get());
  ThinClient client(fulls);
  ASSERT_TRUE(client.SyncHeaders().ok());

  std::vector<Transaction> results;
  AuthQueryStats stats;
  ASSERT_TRUE(
      client.AuthTraceTwoDimQuery("org1", "a", 3, 2, &results, &stats).ok());
  EXPECT_EQ(results.size(), 4u);  // org1's txns to table a only
  for (const auto& result : results) {
    EXPECT_EQ(result.sender(), "org1");
    EXPECT_EQ(result.tname(), "a");
  }
  results.clear();
  ASSERT_TRUE(
      client.AuthTraceTwoDimQuery("n0", "b", 3, 2, &results, &stats).ok());
  EXPECT_EQ(results.size(), 0u);  // n0 never wrote to b
}

TEST_F(ClusterTest, ThinClientAuthenticatedRange) {
  ResultSet rs;
  ASSERT_TRUE(nodes_[0]->ExecuteSql("CREATE d (amount int)", {}, &rs).ok());
  for (int i = 0; i < 30; i++) {
    ASSERT_TRUE(nodes_[0]
                    ->ExecuteSql(
                        "INSERT INTO d VALUES (" + std::to_string(i) + ")", {},
                        &rs)
                    .ok());
  }
  uint64_t height = nodes_[0]->chain().height();
  for (auto& node : nodes_) {
    ASSERT_TRUE(WaitForHeight(node.get(), height));
    // Every full node maintains the authenticated index.
    ASSERT_TRUE(node->ExecuteSql("CREATE INDEX ON d(amount)", {}, &rs).ok());
  }

  std::vector<SebdbNode*> fulls;
  for (auto& node : nodes_) fulls.push_back(node.get());
  ThinClient client(fulls);
  ASSERT_TRUE(client.SyncHeaders().ok());

  Schema schema;
  ASSERT_TRUE(nodes_[0]->chain().catalog()->GetSchema("d", &schema).ok());
  int column_index = schema.ColumnIndex("amount");
  Value lo = Value::Int(10), hi = Value::Int(19);
  std::vector<Transaction> results;
  AuthQueryStats stats;
  ASSERT_TRUE(client
                  .AuthRangeQuery("d", "amount", column_index, &lo, &hi, 3, 2,
                                  &results, &stats)
                  .ok());
  EXPECT_EQ(results.size(), 10u);
  for (const auto& txn : results) {
    int64_t v = txn.values()[0].AsInt();
    EXPECT_GE(v, 10);
    EXPECT_LE(v, 19);
  }
}

TEST_F(ClusterTest, AccessControlBlocksOutsiders) {
  ResultSet rs;
  ASSERT_TRUE(nodes_[0]->ExecuteSql("CREATE priv (v int)", {}, &rs).ok());
  for (auto& node : nodes_) ASSERT_TRUE(WaitForHeight(node.get(), 2));
  // Channel membership: only n0 may touch "priv".
  for (auto& node : nodes_) {
    ASSERT_TRUE(node->access_control()->AssignTable("priv", "ch").ok());
    ASSERT_TRUE(node->access_control()->AddMember("ch", "n0").ok());
  }
  ASSERT_TRUE(
      nodes_[0]->ExecuteSql("INSERT INTO priv VALUES (1)", {}, &rs).ok());
  EXPECT_TRUE(nodes_[1]
                  ->ExecuteSql("INSERT INTO priv VALUES (2)", {}, &rs)
                  .IsInvalidArgument());
  EXPECT_TRUE(nodes_[1]
                  ->ExecuteSql("SELECT * FROM priv", {}, &rs)
                  .IsInvalidArgument());
}

TEST_F(ClusterTest, StoredProcedureDonationFlow) {
  ResultSet rs;
  ASSERT_TRUE(nodes_[0]
                  ->ExecuteSql("CREATE donate (donor string, amount int)", {},
                               &rs)
                  .ok());
  ProcedureRegistry procedures;
  ASSERT_TRUE(procedures
                  .Register("record_donation",
                            {"INSERT INTO donate VALUES (?, ?)",
                             "SELECT * FROM donate WHERE donor = ?"})
                  .ok());
  EXPECT_TRUE(procedures.Has("record_donation"));
  EXPECT_FALSE(procedures.Has("nope"));
  // Bad SQL rejected at registration.
  EXPECT_TRUE(
      procedures.Register("bad", {"FLY TO the moon"}).IsInvalidArgument());

  std::vector<ResultSet> results;
  ASSERT_TRUE(procedures
                  .Invoke(nodes_[0].get(), "record_donation",
                          {Value::Str("Jack"), Value::Int(42),
                           Value::Str("Jack")},
                          &results)
                  .ok());
  ASSERT_EQ(results.size(), 2u);
  ASSERT_EQ(results[1].num_rows(), 1u);

  // Too few parameters.
  results.clear();
  EXPECT_TRUE(procedures
                  .Invoke(nodes_[0].get(), "record_donation",
                          {Value::Str("x")}, &results)
                  .IsInvalidArgument());
}

TEST_F(ClusterTest, PbftClusterEndToEnd) {
  // A second cluster on the same network, running PBFT.
  std::vector<std::string> ids = {"p0", "p1", "p2", "p3"};
  for (const auto& id : ids) {
    ASSERT_TRUE(keystore_.AddIdentity(id, "secret-" + id).ok());
  }
  std::vector<std::unique_ptr<SebdbNode>> cluster;
  for (const auto& id : ids) {
    NodeOptions options;
    options.node_id = id;
    options.data_dir = dir_->path() + "/" + id;
    options.consensus = ConsensusKind::kPbft;
    options.participants = ids;
    options.consensus_options.max_batch_txns = 2;
    options.consensus_options.batch_timeout_millis = 20;
    options.gossip.interval_millis = 10;
    auto node = std::make_unique<SebdbNode>(options, &keystore_, nullptr);
    ASSERT_TRUE(node->Start(&net_).ok());
    cluster.push_back(std::move(node));
  }
  ResultSet rs;
  ASSERT_TRUE(cluster[0]->ExecuteSql("CREATE t (v int)", {}, &rs).ok());
  // p1 applies the CREATE block at its own pace; wait until its catalog
  // knows the table before submitting from it.
  ASSERT_TRUE(WaitForHeight(cluster[1].get(), 2));
  ASSERT_TRUE(
      cluster[1]->ExecuteSql("INSERT INTO t VALUES (7)", {}, &rs).ok());
  for (auto& node : cluster) {
    ASSERT_TRUE(WaitForHeight(node.get(), 3));
  }
  ResultSet result;
  ASSERT_TRUE(cluster[3]->ExecuteSql("SELECT * FROM t", {}, &result).ok());
  EXPECT_EQ(result.num_rows(), 1u);
  for (auto& node : cluster) node->Stop();
}

}  // namespace
}  // namespace sebdb
