// Regression tests for the unguarded accesses exposed by the thread-safety
// annotation pass. Each test reproduces the pre-fix interleaving with real
// threads, so running this binary under the tsan preset (scripts/check.sh
// tsan) re-detects the race if a fix regresses:
//   - GossipAgent::rng_ was drawn by RunRound without pull_mu_ while
//     MaybeRetryPull used it under the lock.
//   - BlockStore::cache_stats()/recovery_stats() read guarded state (and
//     per-counter LRU getters could tear a multi-counter snapshot).
//   - BlockStore::Open mutated guarded members before taking mu_.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/coding.h"
#include "network/gossip.h"
#include "network/sim_network.h"
#include "storage/block.h"
#include "storage/block_store.h"
#include "tests/test_util.h"

namespace sebdb {
namespace {

using testing_util::MakeTxn;
using testing_util::ScratchDir;

Block MakeBlock(BlockId height, TransactionId first_tid, int num_txns) {
  BlockBuilder builder;
  builder.SetHeight(height)
      .SetPrevHash(Hash256{})
      .SetTimestamp(1000 + height)
      .SetFirstTid(first_tid);
  for (int i = 0; i < num_txns; i++) {
    builder.AddTransaction(MakeTxn("donate", "org" + std::to_string(i),
                                   1000 + height + i,
                                   {Value::Int(i), Value::Str("payload")}));
  }
  return std::move(builder).Build("sig");
}

/// Delegate that pretends to always be behind: a digest from a taller peer
/// arms the pull-retry state, so MaybeRetryPull keeps drawing from the
/// shared RNG under pull_mu_ while the test hammers RunRound.
class LaggingDelegate : public GossipDelegate {
 public:
  uint64_t ChainHeight() override { return 0; }
  Status GetBlockRecord(BlockId, std::string*) override {
    return Status::NotFound("empty chain");
  }
  Status ApplyBlockRecord(BlockId, const std::string&) override {
    return Status::OK();
  }
};

// Pre-fix: RunRound drew gossip targets from rng_ with no lock while the
// retry path used the same RNG under pull_mu_. Concurrent RunRound calls
// from several threads (the public API allows a test driver thread next to
// the ticker) made the data race observable under TSan. The taller peer is
// deliberately not registered — the sim network swallows its traffic, so
// the test exercises only the lagger's round/retry interleaving.
TEST(GossipLockingTest, ConcurrentRoundsShareRngSafely) {
  SimNetwork network;
  LaggingDelegate lagging;
  GossipOptions options;
  options.fanout = 2;
  options.pull_retry_initial_millis = 0;  // every round retries immediately
  options.pull_retry_max_millis = 1;
  GossipAgent lagger("lagger", &network, &lagging, {"tall"}, options);

  // Arm the pull state: deliver a digest advertising height 100 directly.
  std::string digest;
  PutVarint64(&digest, 100);
  lagger.HandleMessage(Message{"gossip.digest", "tall", "lagger", digest});

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; i++) lagger.RunRound();
    });
  }
  for (auto& t : threads) t.join();
  network.DrainAll();
  // With a zero backoff window every armed round re-issues the pull; the
  // exact count depends on interleaving but must be nonzero.
  EXPECT_GT(lagger.pull_retries(), 0u);
}

// Pre-fix: cache_stats() read the cache pointers and counters without mu_,
// racing Append/ReadBlock. It also assembled the snapshot from per-counter
// getters, so a reader could observe hits from one insert epoch and usage
// from another. The fixed version holds mu_ and snapshots each cache in one
// lock acquisition; this test checks the invariant that makes tearing
// visible: every cached block has charge == its encoded size, so usage can
// never exceed bytes appended, and hits+misses equals reads issued.
TEST(BlockStoreLockingTest, StatsSnapshotsDuringConcurrentReads) {
  ScratchDir dir("locking_stats");
  BlockStoreOptions options;
  options.block_cache_bytes = 64 * 1024;
  options.transaction_cache_bytes = 64 * 1024;
  BlockStore store;
  ASSERT_TRUE(store.Open(options, dir.path()).ok());
  constexpr int kBlocks = 32;
  for (int h = 0; h < kBlocks; h++) {
    ASSERT_TRUE(store.Append(MakeBlock(h, h * 4 + 1, 4)).ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; t++) {
    readers.emplace_back([&, t] {
      uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        std::shared_ptr<const Block> block;
        ASSERT_TRUE(store.ReadBlock((t * 7 + local) % kBlocks, &block).ok());
        local++;
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int i = 0; i < 500; i++) {
    const BlockStore::CacheStats stats = store.cache_stats();
    EXPECT_LE(stats.block_usage, stats.block_capacity);
    EXPECT_LE(stats.txn_usage, stats.txn_capacity);
    // Counters only grow; a torn snapshot could show hits > lookups issued.
    EXPECT_LE(stats.block_hits + stats.block_misses,
              reads.load(std::memory_order_acquire) + 3);
    const BlockStore::RecoveryStats recovery = store.recovery_stats();
    EXPECT_TRUE(recovery.clean());
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  ASSERT_TRUE(store.Close().ok());
}

// Pre-fix: Open set options_/env_/dir_ and built the caches before taking
// any lock, so two racing Opens (or Open racing a stats reader) tore the
// guarded members. Now the whole of Open runs under mu_: exactly one racer
// wins and the loser sees Busy.
TEST(BlockStoreLockingTest, ConcurrentOpenSerializes) {
  ScratchDir dir("locking_open");
  BlockStore store;
  std::atomic<int> ok{0}, busy{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([&] {
      Status s = store.Open(BlockStoreOptions(), dir.path());
      if (s.ok()) {
        ok.fetch_add(1);
      } else if (s.IsBusy()) {
        busy.fetch_add(1);
      }
      // Reading stats concurrently with the losing Opens must be safe.
      (void)store.recovery_stats();
      (void)store.cache_stats();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), 1);
  EXPECT_EQ(busy.load(), 3);
  ASSERT_TRUE(store.Close().ok());
}

}  // namespace
}  // namespace sebdb
