// Tests for expression evaluation, column binding and sargable range
// extraction.
#include <gtest/gtest.h>

#include "sql/eval.h"
#include "sql/parser.h"

namespace sebdb {
namespace {

// Convenience: parse "SELECT * FROM t WHERE <expr>" and return the where.
const Expr* WhereOf(const std::string& predicate, StatementPtr* keep_alive) {
  EXPECT_TRUE(
      ParseStatement("SELECT * FROM t WHERE " + predicate, keep_alive).ok());
  return std::get<SelectStmt>((*keep_alive)->node).where.get();
}

TEST(ColumnBindingsTest, QualifiedAndUnqualified) {
  ColumnBindings bindings;
  bindings.AddTable("a", {"x", "y"});
  bindings.AddTable("b", {"y", "z"});
  int index;
  ASSERT_TRUE(bindings.Resolve({"", "x"}, &index).ok());
  EXPECT_EQ(index, 0);
  ASSERT_TRUE(bindings.Resolve({"b", "y"}, &index).ok());
  EXPECT_EQ(index, 2);
  ASSERT_TRUE(bindings.Resolve({"", "z"}, &index).ok());
  EXPECT_EQ(index, 3);
  EXPECT_TRUE(bindings.Resolve({"", "y"}, &index).IsInvalidArgument());
  EXPECT_TRUE(bindings.Resolve({"", "w"}, &index).IsNotFound());
  EXPECT_TRUE(bindings.Resolve({"c", "x"}, &index).IsNotFound());
  EXPECT_EQ(bindings.qualified_names()[2], "b.y");
}

class EvalTest : public ::testing::Test {
 protected:
  EvalTest() {
    bindings_.AddTable("t", {"a", "b", "s"});
    row_ = {Value::Int(5), Value::Dec(Decimal::FromDouble(2.5)),
            Value::Str("hello")};
  }
  bool Eval(const std::string& predicate,
            const std::vector<Value>& params = {}) {
    StatementPtr stmt;
    const Expr* where = WhereOf(predicate, &stmt);
    bool result = false;
    Status s = EvalPredicate(*where, bindings_, row_, params, &result);
    EXPECT_TRUE(s.ok()) << predicate << ": " << s.ToString();
    return result;
  }
  ColumnBindings bindings_;
  std::vector<Value> row_;
};

TEST_F(EvalTest, Comparisons) {
  EXPECT_TRUE(Eval("a = 5"));
  EXPECT_FALSE(Eval("a != 5"));
  EXPECT_TRUE(Eval("a > 4"));
  EXPECT_TRUE(Eval("a >= 5"));
  EXPECT_FALSE(Eval("a < 5"));
  EXPECT_TRUE(Eval("a <= 5"));
  EXPECT_TRUE(Eval("b = 2.5"));
  EXPECT_TRUE(Eval("b < a"));
  EXPECT_TRUE(Eval("s = 'hello'"));
  EXPECT_TRUE(Eval("5 = a"));
  EXPECT_TRUE(Eval("4 < a"));
}

TEST_F(EvalTest, BooleanConnectives) {
  EXPECT_TRUE(Eval("a = 5 AND s = 'hello'"));
  EXPECT_FALSE(Eval("a = 5 AND s = 'bye'"));
  EXPECT_TRUE(Eval("a = 9 OR s = 'hello'"));
  EXPECT_FALSE(Eval("a = 9 OR s = 'bye'"));
  EXPECT_TRUE(Eval("(a = 9 OR a = 5) AND b > 2"));
}

TEST_F(EvalTest, Between) {
  EXPECT_TRUE(Eval("a BETWEEN 5 AND 10"));
  EXPECT_TRUE(Eval("a BETWEEN 0 AND 5"));
  EXPECT_FALSE(Eval("a BETWEEN 6 AND 10"));
  EXPECT_TRUE(Eval("b BETWEEN 2 AND 3"));
}

TEST_F(EvalTest, Parameters) {
  EXPECT_TRUE(Eval("a = ?", {Value::Int(5)}));
  EXPECT_FALSE(Eval("a = ?", {Value::Int(6)}));
  EXPECT_TRUE(
      Eval("a BETWEEN ? AND ?", {Value::Int(1), Value::Int(10)}));
  // Missing parameter is an error.
  StatementPtr stmt;
  const Expr* where = WhereOf("a = ?", &stmt);
  bool result;
  EXPECT_FALSE(EvalPredicate(*where, bindings_, row_, {}, &result).ok());
}

TEST_F(EvalTest, NullComparisonsNotTrue) {
  bindings_ = ColumnBindings();
  bindings_.AddTable("t", {"a", "b", "s"});
  row_ = {Value::Null(), Value::Null(), Value::Null()};
  EXPECT_FALSE(Eval("a = 5"));
  EXPECT_FALSE(Eval("a != 5"));
}

TEST_F(EvalTest, TypeMismatchIsError) {
  StatementPtr stmt;
  const Expr* where = WhereOf("s > 5", &stmt);
  bool result;
  EXPECT_FALSE(EvalPredicate(*where, bindings_, row_, {}, &result).ok());
}

TEST(EvalConstTest, RejectsColumns) {
  StatementPtr stmt;
  ASSERT_TRUE(
      ParseStatement("INSERT INTO t VALUES (1, 'x', ?)", &stmt).ok());
  const auto& insert = std::get<InsertStmt>(stmt->node);
  Value v;
  ASSERT_TRUE(EvalConstExpr(*insert.rows[0][0], {}, &v).ok());
  EXPECT_EQ(v.AsInt(), 1);
  ASSERT_TRUE(EvalConstExpr(*insert.rows[0][2], {Value::Int(9)}, &v).ok());
  EXPECT_EQ(v.AsInt(), 9);
}

TEST(RangeExtractionTest, SimpleComparisons) {
  StatementPtr stmt;
  const Expr* where = WhereOf("amount >= 10 AND amount <= 20", &stmt);
  auto range = ExtractColumnRange(where, "t", "amount", {});
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(range->lo->AsInt(), 10);
  EXPECT_EQ(range->hi->AsInt(), 20);
}

TEST(RangeExtractionTest, BetweenAndEquality) {
  StatementPtr stmt;
  const Expr* where = WhereOf("amount BETWEEN ? AND ?", &stmt);
  auto range = ExtractColumnRange(where, "t", "amount",
                                  {Value::Int(3), Value::Int(7)});
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(range->lo->AsInt(), 3);
  EXPECT_EQ(range->hi->AsInt(), 7);

  const Expr* eq = WhereOf("amount = 5", &stmt);
  range = ExtractColumnRange(eq, "t", "amount", {});
  ASSERT_TRUE(range.has_value());
  EXPECT_TRUE(range->IsPoint());
}

TEST(RangeExtractionTest, FlippedOperand) {
  StatementPtr stmt;
  const Expr* where = WhereOf("10 <= amount AND 20 >= amount", &stmt);
  auto range = ExtractColumnRange(where, "t", "amount", {});
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(range->lo->AsInt(), 10);
  EXPECT_EQ(range->hi->AsInt(), 20);
}

TEST(RangeExtractionTest, OrIsNotSargable) {
  StatementPtr stmt;
  const Expr* where = WhereOf("amount = 5 OR amount = 9", &stmt);
  EXPECT_FALSE(ExtractColumnRange(where, "t", "amount", {}).has_value());
  // ...but an AND above an OR still uses the AND side.
  const Expr* mixed = WhereOf("amount > 3 AND (x = 1 OR x = 2)", &stmt);
  auto range = ExtractColumnRange(mixed, "t", "amount", {});
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(range->lo->AsInt(), 3);
  EXPECT_FALSE(range->hi.has_value());
}

TEST(RangeExtractionTest, TightensAcrossConjuncts) {
  StatementPtr stmt;
  const Expr* where =
      WhereOf("amount >= 5 AND amount >= 8 AND amount <= 100 AND amount <= 50",
              &stmt);
  auto range = ExtractColumnRange(where, "t", "amount", {});
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(range->lo->AsInt(), 8);
  EXPECT_EQ(range->hi->AsInt(), 50);
}

TEST(RangeExtractionTest, OtherColumnsIgnored) {
  StatementPtr stmt;
  const Expr* where = WhereOf("other = 5 AND x.amount > 2", &stmt);
  EXPECT_FALSE(ExtractColumnRange(where, "t", "amount", {}).has_value());
  // Qualified with the right table counts.
  const Expr* qualified = WhereOf("t.amount > 2", &stmt);
  EXPECT_TRUE(ExtractColumnRange(qualified, "t", "amount", {}).has_value());
}

TEST(RangeExtractionTest, NullWhereGivesNothing) {
  EXPECT_FALSE(ExtractColumnRange(nullptr, "t", "a", {}).has_value());
}

}  // namespace
}  // namespace sebdb
