// Unit tests for src/types: Value, Decimal, Schema, Transaction.
#include <gtest/gtest.h>

#include "types/schema.h"
#include "types/transaction.h"
#include "types/value.h"

namespace sebdb {
namespace {

TEST(DecimalTest, ParsePrintRoundTrip) {
  const char* cases[] = {"0", "1", "-1", "100.25", "-3.1415", "42.5", "0.0001"};
  for (const char* text : cases) {
    Decimal d;
    ASSERT_TRUE(Decimal::FromString(text, &d).ok()) << text;
    Decimal back;
    ASSERT_TRUE(Decimal::FromString(d.ToString(), &back).ok());
    EXPECT_EQ(back, d) << text;
  }
  Decimal d;
  ASSERT_TRUE(Decimal::FromString("100.25", &d).ok());
  EXPECT_EQ(d.scaled, 1002500);
  EXPECT_EQ(d.ToString(), "100.25");
  EXPECT_DOUBLE_EQ(d.ToDouble(), 100.25);
}

TEST(DecimalTest, TruncatesExtraFractionDigits) {
  Decimal d;
  ASSERT_TRUE(Decimal::FromString("1.123456", &d).ok());
  EXPECT_EQ(d.scaled, 11234);
}

TEST(DecimalTest, RejectsMalformed) {
  Decimal d;
  EXPECT_FALSE(Decimal::FromString("", &d).ok());
  EXPECT_FALSE(Decimal::FromString("abc", &d).ok());
  EXPECT_FALSE(Decimal::FromString("1.2.3", &d).ok());
  EXPECT_FALSE(Decimal::FromString(".", &d).ok());
  EXPECT_FALSE(Decimal::FromString("-", &d).ok());
}

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value::Null().type(), ValueType::kNull);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).AsBool(), true);
  EXPECT_EQ(Value::Int(-7).AsInt(), -7);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::Str("hi").AsString(), "hi");
  EXPECT_EQ(Value::Ts(123).AsTimestamp(), 123);
  EXPECT_TRUE(Value::Int(1).IsNumeric());
  EXPECT_TRUE(Value::Dec(Decimal::FromInt(1)).IsNumeric());
  EXPECT_FALSE(Value::Str("1").IsNumeric());
}

TEST(ValueTest, CrossNumericComparison) {
  int cmp;
  ASSERT_TRUE(Value::Int(5).Compare(Value::Dec(Decimal::FromInt(5)), &cmp).ok());
  EXPECT_EQ(cmp, 0);
  ASSERT_TRUE(Value::Int(5).Compare(Value::Double(5.5), &cmp).ok());
  EXPECT_LT(cmp, 0);
  ASSERT_TRUE(
      Value::Dec(Decimal::FromDouble(10.5)).Compare(Value::Int(10), &cmp).ok());
  EXPECT_GT(cmp, 0);
}

TEST(ValueTest, IncomparableTypesFail) {
  int cmp;
  EXPECT_FALSE(Value::Int(1).Compare(Value::Str("1"), &cmp).ok());
  EXPECT_FALSE(Value::Bool(true).Compare(Value::Int(1), &cmp).ok());
  // But the total order never fails.
  EXPECT_NE(Value::Int(1).CompareTotal(Value::Str("1")), 0);
}

TEST(ValueTest, NullComparesLowest) {
  int cmp;
  ASSERT_TRUE(Value::Null().Compare(Value::Int(0), &cmp).ok());
  EXPECT_LT(cmp, 0);
  ASSERT_TRUE(Value::Null().Compare(Value::Null(), &cmp).ok());
  EXPECT_EQ(cmp, 0);
}

TEST(ValueTest, StringOrdering) {
  EXPECT_LT(Value::Str("apple").CompareTotal(Value::Str("banana")), 0);
  EXPECT_EQ(Value::Str("x").CompareTotal(Value::Str("x")), 0);
  EXPECT_GT(Value::Str("zz").CompareTotal(Value::Str("z")), 0);
}

TEST(ValueTest, EncodeDecodeRoundTrip) {
  std::vector<Value> values = {
      Value::Null(),
      Value::Bool(true),
      Value::Bool(false),
      Value::Int(INT64_MIN),
      Value::Int(INT64_MAX),
      Value::Int(0),
      Value::Double(3.14159),
      Value::Double(-0.0),
      Value::Dec(Decimal::FromDouble(-123.4567)),
      Value::Str(""),
      Value::Str("hello world"),
      Value::Ts(1718000000000000),
  };
  std::string buf;
  for (const auto& v : values) v.EncodeTo(&buf);
  Slice input(buf);
  for (const auto& expected : values) {
    Value got;
    ASSERT_TRUE(Value::DecodeFrom(&input, &got));
    EXPECT_EQ(got.CompareTotal(expected), 0) << expected.ToString();
    EXPECT_EQ(got.type(), expected.type());
  }
  EXPECT_TRUE(input.empty());
}

TEST(ValueTest, DecodeTruncatedFails) {
  std::string buf;
  Value::Str("hello").EncodeTo(&buf);
  Slice input(buf.data(), buf.size() - 2);
  Value v;
  EXPECT_FALSE(Value::DecodeFrom(&input, &v));
}

TEST(ValueTest, EqualValuesHashEqual) {
  // Hash-join correctness: values that compare equal must hash equal.
  EXPECT_EQ(Value::Int(5).HashCode(),
            Value::Dec(Decimal::FromInt(5)).HashCode());
  EXPECT_EQ(Value::Int(7).HashCode(), Value::Double(7.0).HashCode());
  EXPECT_EQ(Value::Str("abc").HashCode(), Value::Str("abc").HashCode());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::Str("hi").ToString(), "hi");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Dec(Decimal::FromDouble(10.5)).ToString(), "10.5");
}

TEST(ValueTypeTest, ParseNames) {
  ValueType t;
  EXPECT_TRUE(ParseValueType("string", &t));
  EXPECT_EQ(t, ValueType::kString);
  EXPECT_TRUE(ParseValueType("varchar", &t));
  EXPECT_EQ(t, ValueType::kString);
  EXPECT_TRUE(ParseValueType("int", &t));
  EXPECT_EQ(t, ValueType::kInt64);
  EXPECT_TRUE(ParseValueType("decimal", &t));
  EXPECT_EQ(t, ValueType::kDecimal);
  EXPECT_TRUE(ParseValueType("timestamp", &t));
  EXPECT_FALSE(ParseValueType("blob", &t));
}

TEST(SchemaTest, SystemColumnsPrepended) {
  Schema schema;
  ASSERT_TRUE(Schema::Create("Donate",
                             {{"donor", ValueType::kString},
                              {"project", ValueType::kString},
                              {"amount", ValueType::kDecimal}},
                             &schema)
                  .ok());
  EXPECT_EQ(schema.table_name(), "donate");  // lowercased
  EXPECT_EQ(schema.num_columns(), 8);
  EXPECT_EQ(schema.num_app_columns(), 3);
  EXPECT_EQ(schema.columns()[0].name, "tid");
  EXPECT_EQ(schema.columns()[4].name, "tname");
  EXPECT_EQ(schema.columns()[5].name, "donor");
  EXPECT_EQ(schema.ColumnIndex("AMOUNT"), 7);  // case-insensitive
  EXPECT_EQ(schema.ColumnIndex("missing"), -1);
  EXPECT_TRUE(schema.IsSystemColumn(2));
  EXPECT_FALSE(schema.IsSystemColumn(5));
}

TEST(SchemaTest, RejectsReservedAndDuplicateNames) {
  Schema schema;
  EXPECT_FALSE(
      Schema::Create("t", {{"tid", ValueType::kInt64}}, &schema).ok());
  EXPECT_FALSE(Schema::Create("t",
                              {{"a", ValueType::kInt64},
                               {"a", ValueType::kString}},
                              &schema)
                   .ok());
  EXPECT_FALSE(Schema::Create("", {}, &schema).ok());
}

TEST(SchemaTest, EncodeDecodeRoundTrip) {
  Schema schema;
  ASSERT_TRUE(Schema::Create("transfer",
                             {{"project", ValueType::kString},
                              {"amount", ValueType::kDecimal}},
                             &schema)
                  .ok());
  std::string buf;
  schema.EncodeTo(&buf);
  Slice input(buf);
  Schema decoded;
  ASSERT_TRUE(Schema::DecodeFrom(&input, &decoded).ok());
  EXPECT_EQ(decoded, schema);
}

TEST(TransactionTest, EncodeDecodeRoundTrip) {
  Transaction txn("donate", {Value::Str("Jack"), Value::Str("Education"),
                             Value::Dec(Decimal::FromInt(100))});
  txn.set_tid(42);
  txn.set_ts(1234567);
  txn.set_sender("client-1");
  txn.set_signature("deadbeef");

  std::string buf;
  txn.EncodeTo(&buf);
  Slice input(buf);
  Transaction decoded;
  ASSERT_TRUE(Transaction::DecodeFrom(&input, &decoded).ok());
  EXPECT_EQ(decoded, txn);
  EXPECT_TRUE(input.empty());
}

TEST(TransactionTest, SystemColumnAccess) {
  Transaction txn("donate", {Value::Str("Jack")});
  txn.set_tid(7);
  txn.set_ts(99);
  txn.set_sender("s");
  txn.set_signature("sig");
  EXPECT_EQ(txn.GetColumn(0).AsInt(), 7);
  EXPECT_EQ(txn.GetColumn(1).AsTimestamp(), 99);
  EXPECT_EQ(txn.GetColumn(2).AsString(), "sig");
  EXPECT_EQ(txn.GetColumn(3).AsString(), "s");
  EXPECT_EQ(txn.GetColumn(4).AsString(), "donate");
  EXPECT_EQ(txn.GetColumn(5).AsString(), "Jack");
  EXPECT_TRUE(txn.GetColumn(6).is_null());  // past the end
}

TEST(TransactionTest, GetColumnByName) {
  Schema schema;
  ASSERT_TRUE(
      Schema::Create("donate", {{"donor", ValueType::kString}}, &schema).ok());
  Transaction txn("donate", {Value::Str("Jack")});
  txn.set_sender("s1");
  Value v;
  ASSERT_TRUE(txn.GetColumnByName(schema, "donor", &v).ok());
  EXPECT_EQ(v.AsString(), "Jack");
  ASSERT_TRUE(txn.GetColumnByName(schema, "senid", &v).ok());
  EXPECT_EQ(v.AsString(), "s1");
  EXPECT_TRUE(txn.GetColumnByName(schema, "nope", &v).IsNotFound());
}

TEST(TransactionTest, SigningPayloadExcludesTidAndSignature) {
  Transaction a("t", {Value::Int(1)});
  a.set_ts(5);
  a.set_sender("x");
  Transaction b = a;
  b.set_tid(999);
  b.set_signature("different");
  EXPECT_EQ(a.SigningPayload(), b.SigningPayload());
  // ...but the full hash covers them.
  EXPECT_NE(a.Hash(), b.Hash());
}

TEST(TransactionTest, HashChangesWithContent) {
  Transaction a("t", {Value::Int(1)});
  Transaction b("t", {Value::Int(2)});
  EXPECT_NE(a.Hash(), b.Hash());
}

}  // namespace
}  // namespace sebdb
