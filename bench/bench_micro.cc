// Microbenchmarks (google-benchmark) for the building blocks whose costs
// drive the figure-level results: SHA-256, Merkle tree construction,
// B+-tree insert/seek/bulk-load, MB-tree build/prove/verify, bitmap AND,
// block encode/decode and single-transaction random decode.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "auth/mbtree.h"
#include "common/bitmap.h"
#include "common/random.h"
#include "common/sha256.h"
#include "index/bptree.h"
#include "storage/block.h"
#include "storage/merkle_tree.h"

namespace sebdb {
namespace {

void BM_Sha256(benchmark::State& state) {
  std::string data(state.range(0), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Digest(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(300)->Arg(4096)->Arg(1 << 20);

void BM_MerkleTreeBuild(benchmark::State& state) {
  std::vector<Hash256> leaves;
  for (int i = 0; i < state.range(0); i++) {
    leaves.push_back(Sha256::Digest(Slice("leaf" + std::to_string(i))));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(MerkleTree::ComputeRoot(leaves));
  }
}
BENCHMARK(BM_MerkleTreeBuild)->Arg(200)->Arg(1000);

void BM_BpTreeInsert(benchmark::State& state) {
  Random rng(1);
  for (auto _ : state) {
    BpTree<int64_t, int> tree;
    for (int i = 0; i < state.range(0); i++) {
      tree.Insert(static_cast<int64_t>(rng.Next() % 100000), i);
    }
    benchmark::DoNotOptimize(tree.size());
  }
}
BENCHMARK(BM_BpTreeInsert)->Arg(1000)->Arg(10000);

void BM_BpTreeBulkLoad(benchmark::State& state) {
  std::vector<std::pair<int64_t, int>> entries;
  for (int i = 0; i < state.range(0); i++) entries.push_back({i, i});
  for (auto _ : state) {
    BpTree<int64_t, int> tree;
    auto copy = entries;
    tree.BulkLoad(std::move(copy));
    benchmark::DoNotOptimize(tree.height());
  }
}
BENCHMARK(BM_BpTreeBulkLoad)->Arg(1000)->Arg(10000);

void BM_BpTreeSeek(benchmark::State& state) {
  BpTree<int64_t, int> tree;
  for (int i = 0; i < 100000; i++) tree.Insert(i, i);
  Random rng(2);
  for (auto _ : state) {
    auto it = tree.SeekGE(static_cast<int64_t>(rng.Uniform(100000)));
    benchmark::DoNotOptimize(it.Valid());
  }
}
BENCHMARK(BM_BpTreeSeek);

std::unique_ptr<MbTree> BuildMbTree(int n) {
  std::vector<MbTree::Entry> entries;
  for (int i = 0; i < n; i++) {
    entries.push_back(
        {Value::Int(i), "record-" + std::to_string(i) + std::string(280, 'p')});
  }
  return MbTree::Build(std::move(entries));
}

void BM_MbTreeBuild(benchmark::State& state) {
  for (auto _ : state) {
    auto tree = BuildMbTree(static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(tree->root_hash());
  }
}
BENCHMARK(BM_MbTreeBuild)->Arg(200)->Arg(1000);

void BM_MbTreeProveRange(benchmark::State& state) {
  auto tree = BuildMbTree(1000);
  Value lo = Value::Int(400), hi = Value::Int(500);
  for (auto _ : state) {
    VerificationObject vo;
    tree->ProveRange(&lo, &hi, &vo);
    benchmark::DoNotOptimize(vo.ByteSize());
  }
}
BENCHMARK(BM_MbTreeProveRange);

void BM_MbTreeVerifyRange(benchmark::State& state) {
  auto tree = BuildMbTree(1000);
  Value lo = Value::Int(400), hi = Value::Int(500);
  VerificationObject vo;
  tree->ProveRange(&lo, &hi, &vo);
  auto key_fn = [](const Slice& record, Value* key) -> Status {
    std::string text = record.ToString();
    size_t dash = text.find('-');
    size_t pad = text.find('p');
    *key = Value::Int(std::stoll(text.substr(dash + 1, pad - dash - 1)));
    return Status::OK();
  };
  for (auto _ : state) {
    std::vector<std::string> records;
    Status s = MbTree::VerifyRange(tree->root_hash(), vo, &lo, &hi, key_fn,
                                   &records);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    benchmark::DoNotOptimize(records.size());
  }
}
BENCHMARK(BM_MbTreeVerifyRange);

void BM_BitmapAnd(benchmark::State& state) {
  Random rng(5);
  Bitmap a(state.range(0)), b(state.range(0));
  for (int i = 0; i < state.range(0) / 4; i++) {
    a.Set(rng.Uniform(state.range(0)));
    b.Set(rng.Uniform(state.range(0)));
  }
  for (auto _ : state) {
    Bitmap c = a;
    c.And(b);
    benchmark::DoNotOptimize(c.AnySet());
  }
}
BENCHMARK(BM_BitmapAnd)->Arg(2500)->Arg(100000);

Block MakeBenchBlock(int txns) {
  BlockBuilder builder;
  builder.SetHeight(1).SetTimestamp(1).SetFirstTid(1);
  for (int i = 0; i < txns; i++) {
    Transaction txn("donate",
                    {Value::Str("donor" + std::to_string(i)),
                     Value::Str("project"), Value::Int(i)});
    txn.set_sender("org" + std::to_string(i % 10));
    txn.set_ts(i);
    txn.set_signature(std::string(64, 's'));
    builder.AddTransaction(std::move(txn));
  }
  return std::move(builder).Build("sig");
}

void BM_BlockEncode(benchmark::State& state) {
  Block block = MakeBenchBlock(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::string buf;
    block.EncodeTo(&buf);
    benchmark::DoNotOptimize(buf.size());
  }
}
BENCHMARK(BM_BlockEncode)->Arg(200);

void BM_BlockDecode(benchmark::State& state) {
  Block block = MakeBenchBlock(static_cast<int>(state.range(0)));
  std::string buf;
  block.EncodeTo(&buf);
  for (auto _ : state) {
    Block decoded;
    Slice input(buf);
    Status s = Block::DecodeFrom(&input, &decoded);
    if (!s.ok()) state.SkipWithError("decode failed");
    benchmark::DoNotOptimize(decoded.transactions().size());
  }
  state.SetBytesProcessed(state.iterations() * buf.size());
}
BENCHMARK(BM_BlockDecode)->Arg(200);

void BM_BlockDecodeOneTransaction(benchmark::State& state) {
  Block block = MakeBenchBlock(200);
  std::string buf;
  block.EncodeTo(&buf);
  Random rng(9);
  for (auto _ : state) {
    Transaction txn;
    Status s = Block::DecodeOneTransaction(
        buf, static_cast<uint32_t>(rng.Uniform(200)), &txn);
    if (!s.ok()) state.SkipWithError("decode failed");
    benchmark::DoNotOptimize(txn.tid());
  }
}
BENCHMARK(BM_BlockDecodeOneTransaction);

}  // namespace
}  // namespace sebdb

// Like BENCHMARK_MAIN(), but defaults to machine-readable JSON output in
// BENCH_micro.json (pass --benchmark_out=... to override).
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; i++) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_micro.json";
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
