// Restart-to-serving benchmark (DESIGN.md §11): wall time from
// ChainManager::Open on an existing data directory to the first answered
// query, as a function of chain length, with checkpoints present vs
// removed. With a checkpoint at the tip, recovery loads the serialized
// index state and replays nothing, so the open time tracks checkpoint
// size (under a microsecond per block) instead of replay work (tens of
// microseconds per block) — near-flat, and the replay speedup widens with
// chain length. Each chain carries a continuous user index so
// recovery exercises the full index-restore path, not just the block scan.
// Writes a JSON summary to $SEBDB_BENCH_JSON (default BENCH_restart.json).
#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bchainbench/bench_chain.h"
#include "storage/file.h"

namespace sebdb {
namespace bench {
namespace {

// Blocks are appended through the consensus-batch path with a couple of
// indexed transactions each, the same shape the recovery tests use.
Transaction MakeRestartTxn(const std::string& table, const std::string& sender,
                           Timestamp ts, std::vector<Value> values) {
  Transaction txn(table, std::move(values));
  txn.set_sender(sender);
  txn.set_ts(ts);
  txn.set_signature("bench-sig");
  return txn;
}

ChainOptions RestartChainOptions(uint64_t interval, bool on_close) {
  ChainOptions options;
  options.verify_signatures = false;
  options.checkpoint.interval_blocks = interval;
  options.checkpoint.pool_bytes = 64ull << 20;
  options.checkpoint.checkpoint_on_close = on_close;
  return options;
}

// Builds a chain of `blocks` blocks under `dir`, checkpointing every 256
// blocks and once more at close so the tail above the newest checkpoint is
// empty — the steady-state shape of a cleanly shut-down node.
void BuildChain(const std::string& dir, int blocks) {
  (void)RemoveDirRecursive(dir);
  if (!CreateDirIfMissing(dir).ok()) abort();
  ChainManager chain("bench-node", nullptr);
  if (!chain.Open(RestartChainOptions(256, /*on_close=*/true), dir).ok()) {
    abort();
  }
  if (!chain.indexes()
           ->CreateLayeredIndex("t", "v", Schema::kNumSystemColumns,
                                /*discrete=*/false)
           .ok()) {
    abort();
  }
  for (int b = 0; b < blocks; b++) {
    Timestamp ts = 1000 + b;
    std::vector<Transaction> txns;
    txns.push_back(MakeRestartTxn("t", "org" + std::to_string(b % 4), ts,
                                  {Value::Int(b % 1000), Value::Str("x")}));
    txns.push_back(MakeRestartTxn("u", "org" + std::to_string(b % 3), ts,
                                  {Value::Str("y")}));
    if (!chain.AppendBatch(static_cast<uint64_t>(b), std::move(txns), ts, "sig")
             .ok()) {
      abort();
    }
  }
  if (!chain.Close().ok()) abort();
}

struct OpenResult {
  double open_ms;          // best-of-reps Open + first-query wall time
  bool from_checkpoint;    // recovery source of the last rep
  uint64_t checkpoint_height;
  uint64_t replayed_blocks;
};

// Opens the chain in `dir` and issues one query against each recovered
// index layer — "serving" means answers, not just a returned Status. The
// measuring opens never write checkpoints (interval 0, no close
// checkpoint), so reps see identical on-disk state.
OpenResult MeasureOpen(const std::string& dir, int reps) {
  OpenResult result{1e18, false, 0, 0};
  for (int rep = 0; rep < reps; rep++) {
    ChainManager chain("bench-node", nullptr);
    WallTimer timer;
    if (!chain.Open(RestartChainOptions(0, /*on_close=*/false), dir).ok()) {
      abort();
    }
    BlockIndexEntry entry;
    if (!chain.indexes()->block_index().FindByBlockId(1, &entry).ok()) abort();
    Value key = Value::Int(500);
    LayeredIndex* user = chain.indexes()->GetLayered("t", "v");
    if (user == nullptr) abort();
    (void)user->CandidateBlocks(&key, &key);
    double ms = timer.ElapsedMicros() / 1000.0;
    result.open_ms = std::min(result.open_ms, ms);
    const ChainManager::StartupStats startup = chain.startup_stats();
    result.from_checkpoint = startup.from_checkpoint;
    result.checkpoint_height = startup.checkpoint_height;
    result.replayed_blocks = startup.replayed_blocks;
    if (!chain.Close().ok()) abort();
  }
  return result;
}

struct Row {
  int blocks;
  OpenResult with_ckpt;
  OpenResult full_replay;
};

void AppendRow(std::string* json, const Row& row) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"blocks\": %d, "
      "\"checkpoint_open_ms\": %.3f, \"checkpoint_height\": %llu, "
      "\"checkpoint_replayed\": %llu, "
      "\"full_replay_open_ms\": %.3f, \"full_replayed\": %llu}",
      row.blocks, row.with_ckpt.open_ms,
      static_cast<unsigned long long>(row.with_ckpt.checkpoint_height),
      static_cast<unsigned long long>(row.with_ckpt.replayed_blocks),
      row.full_replay.open_ms,
      static_cast<unsigned long long>(row.full_replay.replayed_blocks));
  *json += buf;
}

void Main() {
  const int scale = BenchScale();
  const int reps = 3;
  const char* json_path_env = std::getenv("SEBDB_BENCH_JSON");
  const std::string json_path =
      json_path_env != nullptr ? json_path_env : "BENCH_restart.json";

  ReportHeader("restart",
               "restart-to-serving vs chain length, checkpoint+tail-replay "
               "vs full replay (256-block checkpoint interval)");

  static std::atomic<uint64_t> run_counter{0};
  std::vector<Row> rows;
  for (int blocks : {512, 2048, 8192}) {
    const int n = blocks * scale;
    const std::string dir = "/tmp/sebdb_bench_restart_" +
                            std::to_string(::getpid()) + "_" +
                            std::to_string(run_counter.fetch_add(1));
    BuildChain(dir, n);

    Row row;
    row.blocks = n;
    // Checkpoint path first: the full-replay measurement deletes the
    // checkpoint directory, which is irreversible for this chain.
    row.with_ckpt = MeasureOpen(dir, reps);
    if (!row.with_ckpt.from_checkpoint) abort();
    ReportPoint("restart", "checkpoint", std::to_string(n), "open_ms",
                row.with_ckpt.open_ms);
    ReportPoint("restart", "checkpoint", std::to_string(n), "replayed",
                static_cast<double>(row.with_ckpt.replayed_blocks));

    if (!RemoveDirRecursive(dir + "/checkpoints").ok()) abort();
    row.full_replay = MeasureOpen(dir, reps);
    if (row.full_replay.from_checkpoint) abort();
    ReportPoint("restart", "full_replay", std::to_string(n), "open_ms",
                row.full_replay.open_ms);
    ReportPoint("restart", "speedup", std::to_string(n), "x",
                row.full_replay.open_ms / row.with_ckpt.open_ms);

    rows.push_back(row);
    (void)RemoveDirRecursive(dir);
  }

  // Headline: with checkpoints, restart cost must not track chain length.
  const double ratio =
      rows.back().with_ckpt.open_ms / rows.front().with_ckpt.open_ms;
  ReportPoint("restart", "flatness", "longest_vs_shortest", "ratio", ratio);

  std::string json = "{\n  \"bench\": \"restart\",\n  \"scale\": " +
                     std::to_string(scale) + ",\n  \"reps\": " +
                     std::to_string(reps) + ",\n  \"runs\": [\n";
  for (size_t i = 0; i < rows.size(); i++) {
    AppendRow(&json, rows[i]);
    json += i + 1 < rows.size() ? ",\n" : "\n";
  }
  char tail[128];
  std::snprintf(tail, sizeof(tail),
                "  ],\n  \"checkpoint_flatness_ratio\": %.3f\n}\n", ratio);
  json += tail;

  std::ofstream out(json_path);
  out << json;
  printf("\nwrote %s\n", json_path.c_str());
}

}  // namespace
}  // namespace bench
}  // namespace sebdb

int main() {
  sebdb::bench::Main();
  return 0;
}
