// Figure 22 (paper §VII-H): block cache vs transaction cache. Queries Q2
// (tracking), Q4 (range), Q5 (on-chain join), Q6 (on-off join) and Q7
// (GET BLOCK) run with the layered index against a store configured with
// either an LRU block cache or an LRU transaction cache; caches are warmed
// first, then each query runs repeatedly and total processing time is
// reported. Index-driven queries touch individual transactions, so the
// transaction cache wins everywhere except the block-granular Q7.
#include <cstdio>

#include "bchainbench/bench_chain.h"

namespace sebdb {
namespace bench {
namespace {

constexpr int64_t kRangeLo = 100000;

std::unique_ptr<BenchChain> BuildChain(bool block_cache, int scale) {
  BenchChain::Options options;
  options.num_blocks = 200 * scale;
  options.txns_per_block = 100;
  if (block_cache) {
    options.store.block_cache_bytes = 256ull << 20;
  } else {
    options.store.transaction_cache_bytes = 256ull << 20;
  }
  auto chain = std::make_unique<BenchChain>("cache", options);
  if (!chain->CreateDonationSchema().ok()) abort();

  int result = 1000 * scale;
  std::vector<Transaction> special;
  // Q2/Q4 results: donate by org1, amounts in range.
  for (int i = 0; i < result; i++) {
    special.push_back(MakeBenchTxn(
        "donate", "org1",
        {Value::Str("d1"), Value::Str("proj"), Value::Int(kRangeLo + i)}));
  }
  // Q5: transfer/distribute with shared organizations (result/2 join rows).
  for (int i = 0; i < result / 2; i++) {
    special.push_back(MakeBenchTxn(
        "transfer", "org2",
        {Value::Str("proj"), Value::Str("d1"),
         Value::Str("shared" + std::to_string(i)), Value::Int(i)}));
    special.push_back(MakeBenchTxn(
        "distribute", "org3",
        {Value::Str("proj"), Value::Str("shared" + std::to_string(i)),
         Value::Str("donee" + std::to_string(i)), Value::Int(i)}));
  }
  Random rng(87);
  Placement placement;
  Status s = chain->Fill(std::move(special), placement, [&rng](int, int) {
    return MakeBenchTxn(
        "donate", "user" + std::to_string(rng.Uniform(50)),
        {Value::Str("d" + std::to_string(rng.Uniform(50))),
         Value::Str("proj"),
         Value::Int(static_cast<int64_t>(rng.Uniform(kRangeLo)))});
  });
  if (!s.ok()) abort();

  // Off-chain rows for Q6.
  chain->offchain()->CreateTable("donorinfo",
                                 {{"donee", ValueType::kString},
                                  {"name", ValueType::kString}});
  for (int i = 0; i < result / 2; i++) {
    chain->offchain()->Insert("donorinfo",
                              {Value::Str("donee" + std::to_string(i)),
                               Value::Str("n" + std::to_string(i))});
  }

  ResultSet ddl;
  ExecOptions none;
  if (!chain->Execute("CREATE INDEX ON donate(amount)", none, &ddl).ok() ||
      !chain->Execute("CREATE INDEX ON transfer(organization)", none, &ddl)
           .ok() ||
      !chain->Execute("CREATE INDEX ON distribute(organization)", none, &ddl)
           .ok() ||
      !chain->Execute("CREATE INDEX ON distribute(donee)", none, &ddl).ok()) {
    abort();
  }
  return chain;
}

struct Query {
  const char* name;
  std::string sql;
};

void Main() {
  int scale = BenchScale();
  int result = 1000 * scale;
  ReportHeader("Fig22", "block cache vs transaction cache (layered index, "
                        "warmed LRU caches)");

  const int kRequests = 20;  // paper: 100 requests per client
  for (bool block_cache : {true, false}) {
    auto chain = BuildChain(block_cache, scale);
    Random rng(3);
    uint64_t height = chain->chain().height();

    const Query queries[] = {
        {"Q2", "TRACE OPERATOR = 'org1'"},
        {"Q4", "SELECT * FROM donate WHERE amount BETWEEN " +
                   std::to_string(kRangeLo) + " AND " +
                   std::to_string(kRangeLo + result - 1)},
        {"Q5", "SELECT * FROM transfer, distribute ON transfer.organization "
               "= distribute.organization"},
        {"Q6", "SELECT * FROM onchain.distribute, offchain.donorinfo ON "
               "distribute.donee = donorinfo.donee"},
        {"Q7", ""},  // GET BLOCK with rotating ids
    };
    for (const auto& query : queries) {
      ExecOptions options;
      options.access_path = AccessPath::kLayered;
      options.join_strategy = JoinStrategy::kLayeredMerge;
      auto run_once = [&](int i) {
        ResultSet rs;
        std::string sql = query.sql;
        if (std::string(query.name) == "Q7") {
          sql = "GET BLOCK ID=" +
                std::to_string((static_cast<uint64_t>(i) * 7 + 1) % height);
        }
        Status s = chain->Execute(sql, options, &rs);
        if (!s.ok()) {
          fprintf(stderr, "%s failed: %s\n", query.name,
                  s.ToString().c_str());
          abort();
        }
      };
      // Warm the cache, then measure.
      for (int i = 0; i < 3; i++) run_once(i);
      WallTimer timer;
      for (int i = 0; i < kRequests; i++) run_once(i);
      double ms = timer.ElapsedMicros() / 1000.0;
      ReportPoint("Fig22", block_cache ? "block-cache" : "txn-cache",
                  query.name, "total_ms", ms);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace sebdb

int main() {
  sebdb::bench::Main();
  return 0;
}
