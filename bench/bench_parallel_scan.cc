// Serial vs parallel query execution and startup replay (thread-pool
// pipeline). Two modes per workload:
//
//   cpu    real filesystem. On a many-core machine decode + predicate work
//          overlaps; on a single-core container expect ~1x.
//   simio  every file read carries a fixed latency (default 200 us,
//          approximating a disk seek), so the benchmark measures how well
//          the pipeline overlaps I/O waits — the dominant cost on the
//          storage the paper targets. Speedup here is latency hiding, not
//          core count, so it reproduces on any machine.
//
// Every parallel run is checked row-for-row against the serial run. Results
// print as FIG lines and are also written as machine-readable JSON to
// $SEBDB_BENCH_JSON (default BENCH_parallel.json).
//
//   SEBDB_PARALLEL_BLOCKS     chain size (default 1000 data blocks)
//   SEBDB_SIMIO_READ_MICROS   injected per-read latency (default 200)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bchainbench/bench_chain.h"
#include "common/env.h"
#include "common/thread_pool.h"
#include "core/chain_manager.h"
#include "sql/executor.h"
#include "storage/file.h"

namespace sebdb {
namespace {

using bench::ReportHeader;
using bench::ReportPoint;
using bench::WallTimer;

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoll(v) : fallback;
}

// --- Env adding a fixed latency to every file read (the simio mode) -------

class SlowReadableFile : public ReadableFile {
 public:
  SlowReadableFile(std::unique_ptr<ReadableFile> base, int64_t micros)
      : base_(std::move(base)), micros_(micros) {}
  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    std::this_thread::sleep_for(std::chrono::microseconds(micros_));
    return base_->Read(offset, n, out);
  }
  Status Close() override { return base_->Close(); }
  uint64_t size() const override { return base_->size(); }

 private:
  std::unique_ptr<ReadableFile> base_;
  int64_t micros_;
};

class SlowReadEnv : public Env {
 public:
  explicit SlowReadEnv(int64_t read_micros) : read_micros_(read_micros) {}

  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* out) override {
    return Env::Default()->NewWritableFile(path, out);
  }
  Status NewReadableFile(const std::string& path,
                         std::unique_ptr<ReadableFile>* out) override {
    std::unique_ptr<ReadableFile> base;
    Status s = Env::Default()->NewReadableFile(path, &base);
    if (!s.ok()) return s;
    *out = std::make_unique<SlowReadableFile>(std::move(base), read_micros_);
    return Status::OK();
  }
  Status CreateDirIfMissing(const std::string& path) override {
    return Env::Default()->CreateDirIfMissing(path);
  }
  Status ListDir(const std::string& path,
                 std::vector<std::string>* out) override {
    return Env::Default()->ListDir(path, out);
  }
  Status RemoveDirRecursive(const std::string& path) override {
    return Env::Default()->RemoveDirRecursive(path);
  }
  Status RemoveFile(const std::string& path) override {
    return Env::Default()->RemoveFile(path);
  }
  Status TruncateFile(const std::string& path, uint64_t size) override {
    return Env::Default()->TruncateFile(path, size);
  }
  Status FileSize(const std::string& path, uint64_t* size) override {
    return Env::Default()->FileSize(path, size);
  }
  Status SyncDir(const std::string& path) override {
    return Env::Default()->SyncDir(path);
  }

 private:
  int64_t read_micros_;
};

// --- fixture ---------------------------------------------------------------

constexpr const char* kDir = "/tmp/sebdb_bench_parallel_scan";

#define CHECK_OK(expr)                                                  \
  do {                                                                  \
    Status _s = (expr);                                                 \
    if (!_s.ok()) {                                                     \
      fprintf(stderr, "FATAL %s: %s\n", #expr, _s.ToString().c_str());  \
      exit(1);                                                          \
    }                                                                   \
  } while (0)

Transaction MakeTxn(const std::string& tname, const std::string& sender,
                    Timestamp ts, std::vector<Value> values) {
  Transaction txn(tname, std::move(values));
  txn.set_sender(sender);
  txn.set_ts(ts);
  txn.set_signature("bench-sig");
  return txn;
}

/// Builds the on-disk chain once (real Env; writes aren't benchmarked):
/// `blocks` data blocks of 10 donate/transfer rows each.
void BuildChain(int blocks) {
  RemoveDirRecursive(kDir);
  CHECK_OK(CreateDirIfMissing(kDir));
  ChainOptions options;
  options.verify_signatures = false;
  ChainManager chain("bench-builder", nullptr);
  CHECK_OK(chain.Open(options, kDir));

  Schema donate, transfer;
  CHECK_OK(Schema::Create("donate",
                          {{"donor", ValueType::kString},
                           {"project", ValueType::kString},
                           {"amount", ValueType::kInt64}},
                          &donate));
  CHECK_OK(Schema::Create("transfer",
                          {{"project", ValueType::kString},
                           {"organization", ValueType::kString},
                           {"amount", ValueType::kInt64}},
                          &transfer));
  Timestamp ts = 0;
  std::vector<Transaction> schema_txns;
  for (const Schema* schema : {&donate, &transfer}) {
    Transaction txn = Catalog::MakeSchemaTransaction(*schema);
    txn.set_sender("admin");
    txn.set_ts(ts += 10);
    schema_txns.push_back(std::move(txn));
  }
  CHECK_OK(chain.AppendBatch(0, std::move(schema_txns), ts, "sig"));

  int amount = 0;
  for (int b = 0; b < blocks; b++) {
    std::vector<Transaction> txns;
    for (int i = 0; i < 10; i++, amount++) {
      if (i == 9) {
        txns.push_back(MakeTxn(
            "transfer", "org" + std::to_string(b % 7), ts += 10,
            {Value::Str("proj" + std::to_string(b % 11)),
             Value::Str("school" + std::to_string(b % 5)),
             Value::Int(amount)}));
      } else {
        txns.push_back(MakeTxn(
            "donate", "donor" + std::to_string(amount % 23), ts += 10,
            {Value::Str("d" + std::to_string(amount % 23)),
             Value::Str("proj" + std::to_string(b % 11)),
             Value::Int(amount % 4096)}));
      }
    }
    CHECK_OK(chain.AppendBatch(chain.height() - 1, std::move(txns), ts, "sig"));
  }
  CHECK_OK(chain.Close());
}

std::vector<std::string> Rendered(const ResultSet& result) {
  std::vector<std::string> out;
  out.reserve(result.rows.size());
  for (const auto& row : result.rows) {
    std::string line;
    for (const auto& v : row) line += v.ToString() + "|";
    out.push_back(std::move(line));
  }
  return out;
}

struct PoolRun {
  int threads = 0;  // 0 = serial (no pool)
  int64_t micros = 0;
  double speedup = 1.0;
  bool identical = true;
};

struct WorkloadResult {
  std::string name;
  std::vector<PoolRun> runs;
};

int64_t TimeQuery(Executor* executor, const std::string& sql,
                  const ExecOptions& options, ResultSet* result,
                  int iterations) {
  int64_t best = INT64_MAX;
  for (int it = 0; it < iterations; it++) {
    result->rows.clear();
    WallTimer timer;
    CHECK_OK(executor->ExecuteSql(sql, options, result));
    best = std::min(best, timer.ElapsedMicros());
  }
  return best;
}

// --- JSON ------------------------------------------------------------------

std::string JsonEscape(const std::string& in) {
  std::string out;
  for (char c : in) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

void AppendWorkloadJson(const WorkloadResult& w, std::string* json) {
  *json += "      {\"name\": \"" + JsonEscape(w.name) + "\", \"runs\": [";
  for (size_t i = 0; i < w.runs.size(); i++) {
    const PoolRun& run = w.runs[i];
    if (i > 0) *json += ", ";
    *json += "{\"threads\": " + std::to_string(run.threads) +
             ", \"micros\": " + std::to_string(run.micros) +
             ", \"speedup\": " + std::to_string(run.speedup) +
             ", \"identical\": " + (run.identical ? "true" : "false") + "}";
  }
  *json += "]}";
}

// --- one mode --------------------------------------------------------------

std::vector<WorkloadResult> RunMode(const std::string& mode, Env* env,
                                    int blocks) {
  std::vector<WorkloadResult> results;
  ChainOptions options;
  options.verify_signatures = false;
  options.store.env = env;
  ChainManager chain("bench-" + mode, nullptr);
  CHECK_OK(chain.Open(options, kDir));
  Executor executor(chain.store(), chain.indexes(), chain.catalog(), nullptr);
  {
    // First mode creates it; later modes inherit it via the index manifest.
    ResultSet rs;
    if (chain.indexes()->GetLayered("donate", "amount") == nullptr) {
      CHECK_OK(executor.ExecuteSql("CREATE INDEX ON donate(amount)", {}, &rs));
    }
  }

  struct Workload {
    std::string name, sql;
    ExecOptions options;
  };
  std::vector<Workload> workloads;
  {
    Workload select_scan;
    select_scan.name = "select_scan";
    select_scan.sql = "SELECT * FROM donate WHERE amount BETWEEN 512 AND 640";
    select_scan.options.access_path = AccessPath::kScan;
    workloads.push_back(select_scan);

    Workload select_layered;
    select_layered.name = "select_layered";
    select_layered.sql =
        "SELECT * FROM donate WHERE amount BETWEEN 512 AND 640";
    select_layered.options.access_path = AccessPath::kLayered;
    workloads.push_back(select_layered);

    Workload trace;
    trace.name = "trace_bitmap";
    trace.sql = "TRACE OPERATOR = 'donor7'";
    trace.options.access_path = AccessPath::kBitmap;
    workloads.push_back(trace);

    Workload join;
    join.name = "join_bitmap_hash";
    join.sql =
        "SELECT * FROM donate, transfer ON donate.project = transfer.project "
        "WHERE donate.amount < 40";
    join.options.join_strategy = JoinStrategy::kBitmapHash;
    workloads.push_back(join);
  }

  const int iterations = 2;
  std::vector<int> thread_counts = {1, 2, 4, 8};
  std::vector<std::unique_ptr<ThreadPool>> pools;
  for (int t : thread_counts) pools.push_back(std::make_unique<ThreadPool>(t));

  for (const auto& w : workloads) {
    WorkloadResult result;
    result.name = w.name;

    executor.set_pool(nullptr);
    ResultSet serial;
    PoolRun serial_run;
    serial_run.micros = TimeQuery(&executor, w.sql, w.options, &serial,
                                  iterations);
    result.runs.push_back(serial_run);
    std::vector<std::string> expected = Rendered(serial);

    for (size_t p = 0; p < pools.size(); p++) {
      executor.set_pool(pools[p].get());
      ResultSet parallel;
      PoolRun run;
      run.threads = thread_counts[p];
      run.micros = TimeQuery(&executor, w.sql, w.options, &parallel,
                             iterations);
      run.speedup = static_cast<double>(serial_run.micros) /
                    static_cast<double>(std::max<int64_t>(run.micros, 1));
      run.identical = Rendered(parallel) == expected;
      result.runs.push_back(run);
      ReportPoint("parallel_scan." + mode, w.name,
                  std::to_string(run.threads), "speedup", run.speedup);
      if (!run.identical) {
        fprintf(stderr, "FATAL %s/%s@%d: parallel rows differ from serial\n",
                mode.c_str(), w.name.c_str(), run.threads);
        exit(1);
      }
    }
    results.push_back(std::move(result));
  }
  CHECK_OK(chain.Close());

  // Startup replay: full Open (read + validate + index rebuild) per config.
  WorkloadResult replay;
  replay.name = "startup_replay";
  {
    ChainOptions serial_options = options;
    ChainManager reopened("bench-replay-serial", nullptr);
    WallTimer timer;
    CHECK_OK(reopened.Open(serial_options, kDir));
    PoolRun run;
    run.micros = timer.ElapsedMicros();
    replay.runs.push_back(run);
    CHECK_OK(reopened.Close());
  }
  const int64_t serial_replay = replay.runs[0].micros;
  for (size_t p = 0; p < pools.size(); p++) {
    ChainOptions par_options = options;
    par_options.pool = pools[p].get();
    ChainManager reopened("bench-replay-parallel", nullptr);
    WallTimer timer;
    CHECK_OK(reopened.Open(par_options, kDir));
    PoolRun run;
    run.threads = thread_counts[p];
    run.micros = timer.ElapsedMicros();
    run.speedup = static_cast<double>(serial_replay) /
                  static_cast<double>(std::max<int64_t>(run.micros, 1));
    (void)blocks;
    replay.runs.push_back(run);
    ReportPoint("parallel_scan." + mode, replay.name,
                std::to_string(run.threads), "speedup", run.speedup);
    CHECK_OK(reopened.Close());
  }
  results.push_back(std::move(replay));
  return results;
}

}  // namespace
}  // namespace sebdb

int main() {
  using namespace sebdb;

  const int blocks =
      static_cast<int>(EnvInt("SEBDB_PARALLEL_BLOCKS", 1000));
  const int64_t read_micros = EnvInt("SEBDB_SIMIO_READ_MICROS", 200);
  const char* json_path_env = std::getenv("SEBDB_BENCH_JSON");
  const std::string json_path =
      json_path_env != nullptr ? json_path_env : "BENCH_parallel.json";

  ReportHeader("parallel_scan",
               "Serial vs parallel scan/trace/join/replay, " +
                   std::to_string(blocks) + " blocks");
  BuildChain(blocks);

  SlowReadEnv slow_env(read_micros);
  struct Mode {
    std::string name;
    Env* env;
  };
  std::vector<Mode> modes = {{"cpu", nullptr}, {"simio", &slow_env}};

  std::string json = "{\n  \"bench\": \"parallel_scan\",\n  \"blocks\": " +
                     std::to_string(blocks) +
                     ",\n  \"simio_read_micros\": " +
                     std::to_string(read_micros) + ",\n  \"modes\": [\n";
  for (size_t m = 0; m < modes.size(); m++) {
    std::vector<WorkloadResult> results =
        RunMode(modes[m].name, modes[m].env, blocks);
    if (m > 0) json += ",\n";
    json += "    {\"mode\": \"" + modes[m].name + "\", \"workloads\": [\n";
    for (size_t w = 0; w < results.size(); w++) {
      if (w > 0) json += ",\n";
      AppendWorkloadJson(results[w], &json);
    }
    json += "\n    ]}";
  }
  json += "\n  ]\n}\n";

  FILE* f = fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  fputs(json.c_str(), f);
  fclose(f);
  fprintf(stderr, "wrote %s\n", json_path.c_str());
  RemoveDirRecursive(kDir);
  return 0;
}
