// Figures 20 & 21 (paper §VII-G): SEBDB's optimized tracking vs a
// ChainSQL-style baseline (full relational replica + GET_TRANSACTION API +
// client-side filtering).
//   Fig. 20: one-dimension tracking Q2 vs blockchain size (both systems use
//            indices and stay flat).
//   Fig. 21: two-dimension tracking Q3 with growing org1 transaction count —
//            ChainSQL returns *all* of org1's transactions and filters at
//            the client, so its latency grows; SEBDB stays flat.
#include <algorithm>
#include <cstdio>
#include <limits>

#include "bchainbench/bench_chain.h"
#include "core/chainsql_baseline.h"

namespace sebdb {
namespace bench {
namespace {

std::unique_ptr<BenchChain> BuildChain(int num_blocks, int org1_txns,
                                       int org1_transfer_txns) {
  BenchChain::Options options;
  options.num_blocks = num_blocks;
  options.txns_per_block = 100;
  auto chain = std::make_unique<BenchChain>("chainsql", options);
  if (!chain->CreateDonationSchema().ok()) abort();

  std::vector<Transaction> special;
  for (int i = 0; i < org1_transfer_txns; i++) {
    special.push_back(MakeBenchTxn(
        "transfer", "org1",
        {Value::Str("proj"), Value::Str("d1"),
         Value::Str("school" + std::to_string(i % 7)), Value::Int(i)}));
  }
  for (int i = 0; i < org1_txns - org1_transfer_txns; i++) {
    special.push_back(MakeBenchTxn(
        "donate", "org1",
        {Value::Str("d1"), Value::Str("proj"), Value::Int(i)}));
  }
  Random rng(71);
  Placement placement;  // uniform, per the paper
  Status s = chain->Fill(std::move(special), placement, [&rng](int, int) {
    return MakeBenchTxn(
        "donate", "user" + std::to_string(rng.Uniform(50)),
        {Value::Str("d" + std::to_string(rng.Uniform(50))),
         Value::Str("proj"),
         Value::Int(static_cast<int64_t>(rng.Uniform(1000)))});
  });
  if (!s.ok()) abort();
  return chain;
}

double RunSebdbTrace(BenchChain* chain, const std::string& sql,
                     size_t expected) {
  ExecOptions options;
  options.access_path = AccessPath::kLayered;
  double best = 1e18;
  for (int round = 0; round < 3; round++) {
    ResultSet result;
    WallTimer timer;
    Status s = chain->Execute(sql, options, &result);
    double ms = timer.ElapsedMicros() / 1000.0;
    if (!s.ok() || result.num_rows() != expected) {
      fprintf(stderr, "SEBDB trace failed: %s (rows %zu, expected %zu)\n",
              s.ToString().c_str(), result.num_rows(), expected);
      abort();
    }
    best = std::min(best, ms);
  }
  return best;
}

void Main() {
  int scale = BenchScale();

  ReportHeader("Fig20", "one-dimension tracking Q2 vs blockchain size: "
                        "SEBDB vs ChainSQL-style baseline");
  int result_size = 2000 * scale;  // paper: 10,000
  for (int blocks : {100, 200, 300, 400, 500}) {
    auto chain = BuildChain(blocks * scale, result_size, result_size);
    ChainsqlBaseline baseline;
    if (!baseline.IngestChain(&chain->chain()).ok()) abort();

    double sebdb_ms =
        RunSebdbTrace(chain.get(), "TRACE OPERATOR = 'org1'", result_size);

    double chainsql_ms = 1e18;
    for (int round = 0; round < 3; round++) {
      WallTimer timer;
      std::vector<Transaction> rows;
      if (!baseline.GetTransactionsByOperator("org1", &rows).ok()) abort();
      chainsql_ms = std::min(chainsql_ms, timer.ElapsedMicros() / 1000.0);
      if (rows.size() != static_cast<size_t>(result_size)) abort();
    }

    std::string x = std::to_string(blocks * scale);
    ReportPoint("Fig20", "SEBDB", x, "latency_ms", sebdb_ms);
    ReportPoint("Fig20", "ChainSQL", x, "latency_ms", chainsql_ms);
  }

  ReportHeader("Fig21", "two-dimension tracking Q3 vs org1 transaction "
                        "count (transfer count fixed)");
  // Paper: 100k txns, result 5,000 transfer-by-org1; org1 txns 5k..80k.
  int transfer_by_org1 = 1000 * scale;
  for (int org1_txns : {2000, 4000, 8000, 16000}) {
    int scaled_org1 = org1_txns * scale;
    auto chain = BuildChain(400 * scale, scaled_org1, transfer_by_org1);
    ChainsqlBaseline baseline;
    if (!baseline.IngestChain(&chain->chain()).ok()) abort();

    double sebdb_ms = RunSebdbTrace(
        chain.get(), "TRACE OPERATOR = 'org1', OPERATION = 'transfer'",
        transfer_by_org1);

    // ChainSQL: server returns all org1 txns; the client filters to
    // transfer within the (whole-chain) window.
    double chainsql_ms = 1e18;
    for (int round = 0; round < 3; round++) {
      WallTimer timer;
      std::vector<Transaction> rows;
      if (!baseline
               .TrackClientSide("org1", "transfer", 0,
                                std::numeric_limits<Timestamp>::max(), &rows)
               .ok()) {
        abort();
      }
      chainsql_ms = std::min(chainsql_ms, timer.ElapsedMicros() / 1000.0);
      if (rows.size() != static_cast<size_t>(transfer_by_org1)) abort();
    }

    std::string x = std::to_string(scaled_org1);
    ReportPoint("Fig21", "SEBDB", x, "latency_ms", sebdb_ms);
    ReportPoint("Fig21", "ChainSQL", x, "latency_ms", chainsql_ms);
  }
}

}  // namespace
}  // namespace bench
}  // namespace sebdb

int main() {
  sebdb::bench::Main();
  return 0;
}
