// Figures 11 & 12 (paper §VII-D): range query Q4
// (SELECT * FROM donate WHERE amount BETWEEN lo AND hi) under scan / bitmap
// / layered index, uniform vs Gaussian placement; histogram depth 100.
//   Fig. 11: fixed result size, varying number of blocks.
//   Fig. 12: fixed block count, varying result size.
#include <cstdio>

#include "bchainbench/bench_chain.h"

namespace sebdb {
namespace bench {
namespace {

// Query range: amounts [100000, 100000 + result_size). Fillers draw from
// [0, 100000).
constexpr int64_t kRangeLo = 100000;

std::unique_ptr<BenchChain> BuildRangeChain(int num_blocks, int result_size,
                                            bool gaussian) {
  BenchChain::Options options;
  options.num_blocks = num_blocks;
  options.txns_per_block = 100;
  auto chain = std::make_unique<BenchChain>("range", options);
  if (!chain->CreateDonationSchema().ok()) abort();

  // The whole donate table (result rows plus out-of-range rows) is placed
  // by the distribution — the paper's generator controls "the physical
  // distribution in blocks of a transaction (i.e. a tuple)" per table, so
  // under Gaussian placement donate occupies few blocks and the table-level
  // bitmap pays off (BG < SG). Filler transactions belong to other tables.
  Random rng(11);
  std::vector<Transaction> donate;
  donate.reserve(result_size * 5);
  for (int i = 0; i < result_size; i++) {
    donate.push_back(MakeBenchTxn(
        "donate", "user" + std::to_string(i % 50),
        {Value::Str("d" + std::to_string(i % 50)), Value::Str("proj"),
         Value::Int(kRangeLo + i)}));
  }
  for (int i = 0; i < result_size * 4; i++) {
    donate.push_back(MakeBenchTxn(
        "donate", "user" + std::to_string(i % 50),
        {Value::Str("d" + std::to_string(i % 50)), Value::Str("proj"),
         Value::Int(static_cast<int64_t>(rng.Uniform(kRangeLo)))}));
  }
  Placement placement;
  placement.gaussian = gaussian;
  placement.stddev = 20.0;
  Status s = chain->Fill(
      std::move(donate), placement, [&rng](int, int) {
        return MakeBenchTxn(
            "transfer", "org" + std::to_string(rng.Uniform(10)),
            {Value::Str("proj"), Value::Str("d1"),
             Value::Str("school" + std::to_string(rng.Uniform(7))),
             Value::Int(static_cast<int64_t>(rng.Uniform(1000)))});
      });
  if (!s.ok()) abort();

  // Layered index on donate.amount, built from the loaded history
  // (histogram depth 100, the paper's setting).
  ResultSet ddl;
  s = chain->Execute("CREATE INDEX ON donate(amount)", ExecOptions(), &ddl);
  if (!s.ok()) {
    fprintf(stderr, "index: %s\n", s.ToString().c_str());
    abort();
  }
  return chain;
}

double RunRange(BenchChain* chain, AccessPath path, int result_size) {
  ExecOptions options;
  options.access_path = path;
  options.params = {Value::Int(kRangeLo),
                    Value::Int(kRangeLo + result_size - 1)};
  double best = 1e18;
  for (int round = 0; round < 3; round++) {
    ResultSet result;
    WallTimer timer;
    Status s = chain->Execute(
        "SELECT * FROM donate WHERE amount BETWEEN ? AND ?", options,
        &result);
    double ms = timer.ElapsedMicros() / 1000.0;
    if (!s.ok() || result.num_rows() != static_cast<size_t>(result_size)) {
      fprintf(stderr, "range failed: %s (rows %zu, expected %d)\n",
              s.ToString().c_str(), result.num_rows(), result_size);
      abort();
    }
    best = std::min(best, ms);
  }
  return best;
}

void RunPoint(const std::string& figure, int num_blocks, int result_size,
              const std::string& x) {
  struct Method {
    AccessPath path;
    const char* tag;
  };
  const Method methods[] = {{AccessPath::kScan, "S"},
                            {AccessPath::kBitmap, "B"},
                            {AccessPath::kLayered, "L"}};
  for (bool gaussian : {false, true}) {
    auto chain = BuildRangeChain(num_blocks, result_size, gaussian);
    for (const auto& method : methods) {
      double ms = RunRange(chain.get(), method.path, result_size);
      ReportPoint(figure, std::string(method.tag) + (gaussian ? "G" : "U"), x,
                  "latency_ms", ms);
    }
  }
}

void Main() {
  int scale = BenchScale();

  ReportHeader("Fig11", "range Q4 latency vs number of blocks "
                        "(result size fixed)");
  for (int blocks : {100, 200, 300, 400, 500}) {
    RunPoint("Fig11", blocks * scale, 1000, std::to_string(blocks * scale));
  }

  ReportHeader("Fig12", "range Q4 latency vs result size "
                        "(block count fixed)");
  int fixed_blocks = 200 * scale;
  for (int result : {1000, 2000, 5000, 10000}) {
    RunPoint("Fig12", fixed_blocks, result, std::to_string(result));
  }
}

}  // namespace
}  // namespace bench
}  // namespace sebdb

int main() {
  sebdb::bench::Main();
  return 0;
}
