// Overload protection benchmark: goodput and commit latency on a 4-node
// Kafka cluster under open-loop offered load at 0.5x / 1x / 2x / 4x the
// measured saturation capacity, with admission control on vs off. Goodput
// counts only commits acked within a client deadline — under overload an
// ack that arrives after the caller gave up is wasted work, which is
// exactly what unbounded queueing produces. The capacity knee is found by
// ramping the offered rate with admission on until goodput stops following
// the offered load. The headline number is goodput at 4x load with
// admission on: bounded mempools shed the excess early (keeping queueing
// delay, and thus ack latency, bounded), so goodput stays within 20% of
// the knee instead of collapsing. Writes a JSON summary to
// $SEBDB_BENCH_JSON (default BENCH_overload.json).
#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <thread>

#include "bchainbench/bench_chain.h"
#include "core/node.h"
#include "network/sim_network.h"

namespace sebdb {
namespace bench {
namespace {

constexpr int kNumNodes = 4;

struct Cluster {
  SimNetwork net;
  KeyStore keystore;
  std::string dir;
  std::vector<std::unique_ptr<SebdbNode>> nodes;

  explicit Cluster(bool admission_on, const std::string& tag) {
    std::vector<std::string> ids;
    for (int i = 0; i < kNumNodes; i++) ids.push_back("n" + std::to_string(i));
    for (const auto& id : ids) keystore.AddIdentity(id, "secret-" + id);
    keystore.AddIdentity("client", "secret-client");

    static std::atomic<uint64_t> run_counter{0};
    dir = "/tmp/sebdb_bench_overload_" + tag + "_" +
          std::to_string(::getpid()) + "_" +
          std::to_string(run_counter.fetch_add(1));

    for (const auto& id : ids) {
      NodeOptions options;
      options.node_id = id;
      options.data_dir = dir + "/" + id;
      options.consensus = ConsensusKind::kKafka;
      options.participants = ids;
      options.consensus_options.max_batch_txns = 100;
      options.consensus_options.batch_timeout_millis = 20;
      // Cap sized so a full mempool drains well inside the goodput
      // deadline: bounded queue => bounded ack latency.
      options.consensus_options.admission.enabled = admission_on;
      options.consensus_options.admission.max_txns = 256;
      options.consensus_options.admission.max_bytes = 4 << 20;
      options.consensus_options.admission.retry_after_base_millis = 5;
      options.enable_gossip = false;  // consensus already replicates
      auto node = std::make_unique<SebdbNode>(options, &keystore, nullptr);
      if (!node->Start(&net).ok()) abort();
      nodes.push_back(std::move(node));
    }
    ResultSet rs;
    if (!nodes[0]
             ->ExecuteSql("CREATE pressure (who string, v int)", ExecOptions(),
                          &rs)
             .ok()) {
      abort();
    }
  }

  ~Cluster() {
    for (auto& node : nodes) node->Stop();
    RemoveDirRecursive(dir);
  }
};

// An ack later than this is wasted work, not goodput (~30x the healthy
// p99, so only genuine queueing collapse trips it).
constexpr int64_t kGoodputDeadlineMillis = 750;

struct LoadResult {
  double offered_x = 0;
  bool admission = false;
  double offered_tps = 0;
  double goodput_tps = 0;  // acks within kGoodputDeadlineMillis / elapsed
  double raw_ack_tps = 0;  // all acks / elapsed, however late
  double p50_ms = 0;
  double p99_ms = 0;
  uint64_t acked = 0;
  uint64_t acked_in_deadline = 0;
  uint64_t rejected = 0;
  uint64_t failed = 0;
};

double Percentile(std::vector<int64_t>* latencies_micros, double q) {
  if (latencies_micros->empty()) return 0;
  std::sort(latencies_micros->begin(), latencies_micros->end());
  size_t idx = static_cast<size_t>(q * (latencies_micros->size() - 1));
  return (*latencies_micros)[idx] / 1000.0;
}

// Open-loop: submit `n` transactions at a fixed pace regardless of acks
// (rejected transactions are dropped, not retried — offered load stays
// constant). Goodput counts commit acks over the whole run, including the
// drain after the last submission.
LoadResult RunLoad(double offered_x, double offered_tps, bool admission_on,
                   int n) {
  Cluster cluster(admission_on, admission_on ? "on" : "off");

  std::vector<Transaction> txns;
  txns.reserve(n);
  for (int i = 0; i < n; i++) {
    Transaction txn;
    if (!cluster.nodes[0]
             ->MakeInsertTransaction("client", "pressure",
                                     {Value::Str("open"), Value::Int(i)}, &txn)
             .ok()) {
      abort();
    }
    txns.push_back(std::move(txn));
  }

  // Shared with the completion callbacks (kept alive past a drain timeout).
  struct Shared {
    std::mutex mu;
    std::condition_variable cv;
    int outstanding = 0;
    uint64_t acked = 0, acked_in_deadline = 0, rejected = 0, failed = 0;
    std::vector<int64_t> latencies_micros;
  };
  auto shared = std::make_shared<Shared>();
  LoadResult result;
  result.offered_x = offered_x;
  result.admission = admission_on;

  WallTimer run_timer;
  // Pace in small groups: at tens of ktps a per-txn sleep_until costs more
  // than the gap itself (and the benchmark shares one core with the
  // cluster under test).
  constexpr int kPaceGroup = 32;
  const int64_t group_gap_micros =
      static_cast<int64_t>(kPaceGroup * 1e6 / std::max(offered_tps, 1.0));
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < n; i++) {
    if (i % kPaceGroup == 0) {
      std::this_thread::sleep_until(
          start +
          std::chrono::microseconds((i / kPaceGroup) * group_gap_micros));
    }
    SebdbNode* node = cluster.nodes[i % cluster.nodes.size()].get();
    WallTimer request;
    // Engines fire the callback for synchronous rejections too (before
    // Submit returns); the per-submission flag makes sure each transaction
    // is counted exactly once whichever path reports first.
    auto counted = std::make_shared<std::atomic<bool>>(false);
    {
      std::lock_guard<std::mutex> lock(shared->mu);
      shared->outstanding++;
    }
    Status submit = node->SubmitAsync(
        std::move(txns[i]), [shared, counted, request](Status s) {
          if (counted->exchange(true)) return;
          std::lock_guard<std::mutex> lock(shared->mu);
          if (s.ok()) {
            int64_t latency = request.ElapsedMicros();
            shared->acked++;
            if (latency <= kGoodputDeadlineMillis * 1000) {
              shared->acked_in_deadline++;
            }
            shared->latencies_micros.push_back(latency);
          } else if (s.IsResourceExhausted()) {
            shared->rejected++;
          } else {
            shared->failed++;
          }
          shared->outstanding--;
          shared->cv.notify_all();
        });
    if (!submit.ok() && !counted->exchange(true)) {
      // Rejected without firing the callback (e.g. engine not running).
      std::lock_guard<std::mutex> lock(shared->mu);
      if (submit.IsResourceExhausted()) {
        shared->rejected++;
      } else {
        shared->failed++;
      }
      shared->outstanding--;
    }
  }
  {
    std::unique_lock<std::mutex> lock(shared->mu);
    shared->cv.wait_for(lock, std::chrono::seconds(120),
                        [&] { return shared->outstanding == 0; });
    // Drain timeout: count stragglers as lost.
    shared->failed += static_cast<uint64_t>(shared->outstanding);
  }
  double elapsed_s = run_timer.ElapsedMicros() / 1e6;
  {
    std::lock_guard<std::mutex> lock(shared->mu);
    result.acked = shared->acked;
    result.acked_in_deadline = shared->acked_in_deadline;
    result.rejected = shared->rejected;
    result.failed = shared->failed;
    result.offered_tps = offered_tps;
    result.goodput_tps =
        result.acked_in_deadline / std::max(elapsed_s, 1e-6);
    result.raw_ack_tps = result.acked / std::max(elapsed_s, 1e-6);
    result.p50_ms = Percentile(&shared->latencies_micros, 0.50);
    result.p99_ms = Percentile(&shared->latencies_micros, 0.99);
  }
  return result;
}

void AppendRunJson(const LoadResult& r, std::string* json) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"offered_x\": %.1f, \"admission\": %s, "
      "\"offered_tps\": %.1f, \"goodput_tps\": %.1f, "
      "\"raw_ack_tps\": %.1f, \"p50_ms\": %.2f, \"p99_ms\": %.2f, "
      "\"acked\": %llu, \"acked_in_deadline\": %llu, \"rejected\": %llu, "
      "\"failed\": %llu}",
      r.offered_x, r.admission ? "true" : "false", r.offered_tps,
      r.goodput_tps, r.raw_ack_tps, r.p50_ms, r.p99_ms,
      static_cast<unsigned long long>(r.acked),
      static_cast<unsigned long long>(r.acked_in_deadline),
      static_cast<unsigned long long>(r.rejected),
      static_cast<unsigned long long>(r.failed));
  *json += buf;
}

void Main() {
  int scale = BenchScale();
  const char* json_path_env = std::getenv("SEBDB_BENCH_JSON");
  const std::string json_path =
      json_path_env != nullptr ? json_path_env : "BENCH_overload.json";

  ReportHeader("overload",
               "goodput and latency vs offered load (0.5x-4x capacity), "
               "admission on vs off, 4-node Kafka cluster");

  // Capacity knee: ramp the offered rate with admission on. Below capacity
  // goodput tracks the offered load; past it, shedding holds goodput at the
  // service rate — the plateau is the knee.
  double capacity_tps = 0;
  for (double rate : {1500.0, 3000.0, 6000.0, 12000.0, 24000.0}) {
    int n = std::min(static_cast<int>(rate * 0.5) * scale, 15000);
    LoadResult probe = RunLoad(0, rate, /*admission_on=*/true, n);
    ReportPoint("overload", "ramp", std::to_string(static_cast<int>(rate)),
                "goodput_tps", probe.goodput_tps);
    capacity_tps = std::max(capacity_tps, probe.goodput_tps);
  }
  ReportPoint("overload", "capacity", "knee", "goodput_tps", capacity_tps);

  // ~1 second of offered load per run, bounded so the 4x run stays cheap.
  std::vector<LoadResult> runs;
  for (double x : {0.5, 1.0, 2.0, 4.0}) {
    for (bool admission_on : {true, false}) {
      double offered = x * capacity_tps;
      int n = std::min(static_cast<int>(offered * 1.0), 40000);
      LoadResult r = RunLoad(x, offered, admission_on, std::max(n, 50));
      std::string series =
          std::string(admission_on ? "admission" : "unbounded");
      ReportPoint("overload", series, std::to_string(x), "goodput_tps",
                  r.goodput_tps);
      ReportPoint("overload", series, std::to_string(x), "p50_ms", r.p50_ms);
      ReportPoint("overload", series, std::to_string(x), "p99_ms", r.p99_ms);
      runs.push_back(r);
    }
  }

  double goodput_4x = 0;
  for (const auto& r : runs) {
    if (r.offered_x == 4.0 && r.admission) goodput_4x = r.goodput_tps;
  }
  double ratio = capacity_tps > 0 ? goodput_4x / capacity_tps : 0;
  bool within = ratio >= 0.8;
  ReportPoint("overload", "admission", "4.0", "goodput_ratio_vs_knee", ratio);
  std::printf("overload: 4x goodput %.1f tps vs knee %.1f tps (ratio %.2f, "
              "%s 20%%)\n",
              goodput_4x, capacity_tps, ratio,
              within ? "within" : "OUTSIDE");

  std::string json = "{\n  \"bench\": \"overload\",\n";
  char head[256];
  std::snprintf(head, sizeof(head),
                "  \"capacity_tps\": %.1f,\n  \"goodput_4x_admission_tps\": "
                "%.1f,\n  \"goodput_ratio_4x\": %.3f,\n  \"within_20pct\": "
                "%s,\n  \"runs\": [\n",
                capacity_tps, goodput_4x, ratio, within ? "true" : "false");
  json += head;
  for (size_t i = 0; i < runs.size(); i++) {
    if (i > 0) json += ",\n";
    AppendRunJson(runs[i], &json);
  }
  json += "\n  ]\n}\n";
  std::ofstream out(json_path);
  out << json;
  out.close();
  std::printf("overload: wrote %s\n", json_path.c_str());
}

}  // namespace
}  // namespace bench
}  // namespace sebdb

int main() {
  sebdb::bench::Main();
  return 0;
}
