#include "bchainbench/bench_chain.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "storage/file.h"

namespace sebdb {
namespace bench {

Transaction MakeBenchTxn(const std::string& tname, const std::string& sender,
                         std::vector<Value> values) {
  Transaction txn(tname, std::move(values));
  txn.set_sender(sender);
  txn.set_signature("bench-sig");
  return txn;
}

BenchChain::BenchChain(const std::string& tag, const Options& options)
    : options_(options) {
  static std::atomic<uint64_t> counter{0};
  dir_ = "/tmp/sebdb_bench_" + tag + "_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1));
  RemoveDirRecursive(dir_);
  CreateDirIfMissing(dir_);
  chain_ = std::make_unique<ChainManager>("bench-node", nullptr);
  ChainOptions chain_options;
  chain_options.store = options.store;
  chain_options.verify_signatures = false;
  Status s = chain_->Open(chain_options, dir_);
  if (!s.ok()) {
    fprintf(stderr, "BenchChain open failed: %s\n", s.ToString().c_str());
    abort();
  }
  connector_ = std::make_unique<LocalOffchainConnector>(&offchain_);
  executor_ = std::make_unique<Executor>(chain_->store(), chain_->indexes(),
                                         chain_->catalog(), connector_.get());
}

BenchChain::~BenchChain() {
  chain_->Close();
  RemoveDirRecursive(dir_);
}

Status BenchChain::CreateDonationSchema() {
  std::vector<Transaction> schema_txns;
  auto add = [&](const std::string& name,
                 std::vector<ColumnDef> columns) -> Status {
    Schema schema;
    Status s = Schema::Create(name, std::move(columns), &schema);
    if (!s.ok()) return s;
    Transaction txn = Catalog::MakeSchemaTransaction(schema);
    txn.set_sender("admin");
    txn.set_ts(NextTs());
    schema_txns.push_back(std::move(txn));
    return Status::OK();
  };
  Status s = add("donate", {{"donor", ValueType::kString},
                            {"project", ValueType::kString},
                            {"amount", ValueType::kInt64}});
  if (!s.ok()) return s;
  s = add("transfer", {{"project", ValueType::kString},
                       {"donor", ValueType::kString},
                       {"organization", ValueType::kString},
                       {"amount", ValueType::kInt64}});
  if (!s.ok()) return s;
  s = add("distribute", {{"project", ValueType::kString},
                         {"organization", ValueType::kString},
                         {"donee", ValueType::kString},
                         {"amount", ValueType::kInt64}});
  if (!s.ok()) return s;
  uint64_t seq = chain_->height() - 1;
  return chain_->AppendBatch(seq, std::move(schema_txns), ts_, "sig");
}

Status BenchChain::Fill(std::vector<Transaction> special,
                        const Placement& placement,
                        const std::function<Transaction(int, int)>& filler) {
  const int n = options_.num_blocks;
  Random rng(placement.seed);

  // Draw a block for each special transaction.
  std::vector<std::vector<Transaction>> per_block(n);
  for (auto& txn : special) {
    int block;
    if (placement.gaussian) {
      block = static_cast<int>(rng.GaussianInRange(
          n / 2.0, placement.stddev, 0, n - 1));
    } else {
      block = static_cast<int>(rng.Uniform(n));
    }
    per_block[block].push_back(std::move(txn));
  }

  for (int b = 0; b < n; b++) {
    std::vector<Transaction> txns = std::move(per_block[b]);
    int fill = options_.txns_per_block - static_cast<int>(txns.size());
    for (int i = 0; i < fill; i++) {
      txns.push_back(filler(b, i));
    }
    // Interleave: shuffle within the block so specials aren't clustered.
    for (size_t i = txns.size(); i > 1; i--) {
      std::swap(txns[i - 1], txns[rng.Uniform(i)]);
    }
    for (auto& txn : txns) txn.set_ts(NextTs());
    block_ts_.push_back(ts_);
    uint64_t seq = chain_->height() - 1;
    Status s =
        chain_->AppendBatch(seq, std::move(txns), ts_, "sig");
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status BenchChain::Execute(const std::string& sql, const ExecOptions& options,
                           ResultSet* result) {
  return executor_->ExecuteSql(sql, options, result);
}

Timestamp BenchChain::BlockTimestamp(int data_block) const {
  if (data_block < 0 || data_block >= static_cast<int>(block_ts_.size())) {
    return ts_;
  }
  return block_ts_[data_block];
}

void ReportHeader(const std::string& figure, const std::string& title) {
  printf("\n==== %s: %s ====\n", figure.c_str(), title.c_str());
  fflush(stdout);
}

void ReportPoint(const std::string& figure, const std::string& series,
                 const std::string& x, const std::string& metric,
                 double value) {
  printf("FIG %-8s | %-16s | x=%-12s | %s=%.3f\n", figure.c_str(),
         series.c_str(), x.c_str(), metric.c_str(), value);
  fflush(stdout);
}

int BenchScale() {
  const char* env = getenv("SEBDB_BENCH_SCALE");
  if (env == nullptr) return 1;
  int scale = atoi(env);
  return scale > 0 ? scale : 1;
}

}  // namespace bench
}  // namespace sebdb
