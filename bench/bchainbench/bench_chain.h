// BChainBench (paper §VII-A): shared benchmark fixture. Builds a donation
// chain (Donate / Transfer / Distribute on-chain tables; DonorInfo /
// DoneeInfo / ChildrenInfo / Customer off-chain tables) with controlled
// placement of "result" transactions across blocks — uniform or Gaussian
// (mean = middle block, configurable variance) — plus timing and
// figure-output helpers.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/chain_manager.h"
#include "offchain/offchain_db.h"
#include "sql/executor.h"

namespace sebdb {
namespace bench {

/// Placement of special (result) transactions across blocks.
struct Placement {
  bool gaussian = false;
  /// Stddev in blocks for the Gaussian (paper: 20, or 50 for large results).
  double stddev = 20.0;
  uint64_t seed = 42;
};

/// A chain in a scratch directory, with executor plumbing.
class BenchChain {
 public:
  struct Options {
    int num_blocks = 100;
    int txns_per_block = 100;
    BlockStoreOptions store;
    uint64_t seed = 42;
  };

  explicit BenchChain(const std::string& tag, const Options& options);
  ~BenchChain();

  /// Registers the three on-chain donation tables (schema block).
  Status CreateDonationSchema();

  /// Builds `options.num_blocks` data blocks. `special` transactions are
  /// placed in blocks drawn from `placement`; every remaining slot is filled
  /// by `filler(block, slot)`. Transactions receive monotone timestamps
  /// (10 µs apart) so WINDOW predicates map onto block ranges.
  Status Fill(std::vector<Transaction> special, const Placement& placement,
              const std::function<Transaction(int, int)>& filler);

  /// SQL DDL helper (CREATE INDEX etc. executed locally).
  Status Execute(const std::string& sql, const ExecOptions& options,
                 ResultSet* result);

  ChainManager& chain() { return *chain_; }
  Executor* executor() { return executor_.get(); }
  OffchainDb* offchain() { return &offchain_; }
  Timestamp last_ts() const { return ts_; }
  /// Timestamp of a given data block (first data block = 0).
  Timestamp BlockTimestamp(int data_block) const;

 private:
  Timestamp NextTs() { return ts_ += 10; }

  std::string dir_;
  Options options_;
  std::unique_ptr<ChainManager> chain_;
  OffchainDb offchain_;
  std::unique_ptr<LocalOffchainConnector> connector_;
  std::unique_ptr<Executor> executor_;
  Timestamp ts_ = 0;
  std::vector<Timestamp> block_ts_;
};

/// Builds a transaction without signing (benchmarks skip crypto).
Transaction MakeBenchTxn(const std::string& tname, const std::string& sender,
                         std::vector<Value> values);

/// Wall-clock timer in microseconds.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Uniform figure output: "FIG <id> | <series> | x=<x> | <metric>=<value>".
void ReportPoint(const std::string& figure, const std::string& series,
                 const std::string& x, const std::string& metric,
                 double value);
void ReportHeader(const std::string& figure, const std::string& title);

/// Benchmark scale factor from $SEBDB_BENCH_SCALE (default 1). Paper scales
/// divided by 5 at scale 1; scale 5 reproduces the paper's block counts.
int BenchScale();

}  // namespace bench
}  // namespace sebdb
