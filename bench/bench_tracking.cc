// Figures 8 & 9 (paper §VII-C): one-dimension tracking query Q2
// (TRACE OPERATOR = 'org1') under three methods — scan (S), table-level
// bitmap index (B), layered index (L) — with result transactions placed
// uniformly (U) or Gaussian (G) across blocks.
//   Fig. 8: fixed result size, varying number of blocks.
//   Fig. 9: fixed block count, varying result size.
// Paper scales (500–2500 blocks, 10k results) are reached with
// SEBDB_BENCH_SCALE=5; the default runs a 1/5-scale sweep with the same
// shape.
#include <cstdio>

#include "bchainbench/bench_chain.h"

namespace sebdb {
namespace bench {
namespace {

Transaction DonateFiller(Random* rng, int block) {
  (void)block;
  return MakeBenchTxn(
      "donate", "user" + std::to_string(rng->Uniform(50)),
      {Value::Str("d" + std::to_string(rng->Uniform(50))), Value::Str("proj"),
       Value::Int(static_cast<int64_t>(rng->Uniform(100000)))});
}

std::unique_ptr<BenchChain> BuildTrackingChain(int num_blocks,
                                               int result_size,
                                               bool gaussian,
                                               double stddev) {
  BenchChain::Options options;
  options.num_blocks = num_blocks;
  options.txns_per_block = 100;
  auto chain = std::make_unique<BenchChain>("tracking", options);
  if (!chain->CreateDonationSchema().ok()) abort();

  std::vector<Transaction> special;
  special.reserve(result_size);
  for (int i = 0; i < result_size; i++) {
    special.push_back(MakeBenchTxn(
        "transfer", "org1",
        {Value::Str("proj"), Value::Str("d1"),
         Value::Str("school" + std::to_string(i % 7)), Value::Int(i)}));
  }
  Placement placement;
  placement.gaussian = gaussian;
  placement.stddev = stddev;
  Random rng(7);
  Status s = chain->Fill(std::move(special), placement,
                         [&rng](int block, int) {
                           return DonateFiller(&rng, block);
                         });
  if (!s.ok()) {
    fprintf(stderr, "fill failed: %s\n", s.ToString().c_str());
    abort();
  }
  return chain;
}

double RunTrace(BenchChain* chain, AccessPath path, size_t expected) {
  ExecOptions options;
  options.access_path = path;
  double best = 1e18;
  for (int round = 0; round < 3; round++) {
    ResultSet result;
    WallTimer timer;
    Status s = chain->Execute("TRACE OPERATOR = 'org1'", options, &result);
    double ms = timer.ElapsedMicros() / 1000.0;
    if (!s.ok() || result.num_rows() != expected) {
      fprintf(stderr, "trace failed: %s (rows %zu, expected %zu)\n",
              s.ToString().c_str(), result.num_rows(), expected);
      abort();
    }
    best = std::min(best, ms);
  }
  return best;
}

void RunPoint(const std::string& figure, int num_blocks, int result_size,
              const std::string& x) {
  struct Method {
    AccessPath path;
    const char* tag;
  };
  const Method methods[] = {{AccessPath::kScan, "S"},
                            {AccessPath::kBitmap, "B"},
                            {AccessPath::kLayered, "L"}};
  // Large result sets use the wider Gaussian the paper uses in Fig. 9.
  double stddev = result_size > 5000 ? 50.0 : 20.0;
  for (bool gaussian : {false, true}) {
    auto chain =
        BuildTrackingChain(num_blocks, result_size, gaussian, stddev);
    for (const auto& method : methods) {
      double ms = RunTrace(chain.get(), method.path, result_size);
      ReportPoint(figure, std::string(method.tag) + (gaussian ? "G" : "U"), x,
                  "latency_ms", ms);
    }
  }
}

void Main() {
  int scale = BenchScale();

  ReportHeader("Fig8", "tracking Q2 latency vs number of blocks "
                       "(result size fixed)");
  for (int blocks : {100, 200, 300, 400, 500}) {
    RunPoint("Fig8", blocks * scale, 2000 * scale,
             std::to_string(blocks * scale));
  }

  ReportHeader("Fig9", "tracking Q2 latency vs result size "
                       "(block count fixed)");
  int fixed_blocks = 200 * scale;
  for (int result : {400, 2000, 6000, 12000}) {
    RunPoint("Fig9", fixed_blocks, result * scale,
             std::to_string(result * scale));
  }
}

}  // namespace
}  // namespace bench
}  // namespace sebdb

int main() {
  sebdb::bench::Main();
  return 0;
}
