// Figures 13 & 14 (paper §VII-E): on-chain join Q5
// (SELECT * FROM transfer, distribute ON transfer.organization =
//  distribute.organization) under three strategies — hash join over a full
// scan (S), hash join over bitmap-filtered blocks (B), layered-index
// sort-merge over intersecting block pairs (L) — with uniform (U) and
// Gaussian (G) placement.
//   Fig. 13: fixed result size, varying number of blocks.
//   Fig. 14: fixed block count, varying result size.
#include <cstdio>

#include "bchainbench/bench_chain.h"

namespace sebdb {
namespace bench {
namespace {

std::unique_ptr<BenchChain> BuildJoinChain(int num_blocks, int result_size,
                                           int table_size, bool gaussian) {
  BenchChain::Options options;
  options.num_blocks = num_blocks;
  options.txns_per_block = 100;
  auto chain = std::make_unique<BenchChain>("join", options);
  if (!chain->CreateDonationSchema().ok()) abort();

  // `result_size` organizations appear exactly once in each table (one join
  // row each); the rest of both tables uses table-unique organizations.
  std::vector<Transaction> special;
  for (int i = 0; i < table_size; i++) {
    std::string org = i < result_size ? "shared" + std::to_string(i)
                                      : "tonly" + std::to_string(i);
    special.push_back(MakeBenchTxn(
        "transfer", "org" + std::to_string(i % 11),
        {Value::Str("proj"), Value::Str("d1"), Value::Str(org),
         Value::Int(i)}));
  }
  for (int i = 0; i < table_size; i++) {
    std::string org = i < result_size ? "shared" + std::to_string(i)
                                      : "donly" + std::to_string(i);
    special.push_back(MakeBenchTxn(
        "distribute", "org" + std::to_string(i % 11),
        {Value::Str("proj"), Value::Str(org),
         Value::Str("donee" + std::to_string(i)), Value::Int(i)}));
  }

  Placement placement;
  placement.gaussian = gaussian;
  placement.stddev = 20.0;
  Random rng(31);
  Status s = chain->Fill(std::move(special), placement, [&rng](int, int) {
    return MakeBenchTxn(
        "donate", "user" + std::to_string(rng.Uniform(50)),
        {Value::Str("d" + std::to_string(rng.Uniform(50))),
         Value::Str("proj"),
         Value::Int(static_cast<int64_t>(rng.Uniform(1000)))});
  });
  if (!s.ok()) abort();

  ResultSet ddl;
  if (!chain->Execute("CREATE INDEX ON transfer(organization)", ExecOptions(),
                      &ddl)
           .ok() ||
      !chain->Execute("CREATE INDEX ON distribute(organization)",
                      ExecOptions(), &ddl)
           .ok()) {
    abort();
  }
  return chain;
}

double RunJoin(BenchChain* chain, JoinStrategy strategy, size_t expected) {
  ExecOptions options;
  options.join_strategy = strategy;
  ResultSet result;
  WallTimer timer;
  Status s = chain->Execute(
      "SELECT * FROM transfer, distribute ON transfer.organization = "
      "distribute.organization",
      options, &result);
  double ms = timer.ElapsedMicros() / 1000.0;
  if (!s.ok() || result.num_rows() != expected) {
    fprintf(stderr, "join failed: %s (rows %zu, expected %zu)\n",
            s.ToString().c_str(), result.num_rows(), expected);
    abort();
  }
  return ms;
}

void RunPoint(const std::string& figure, int num_blocks, int result_size,
              int table_size, const std::string& x) {
  struct Method {
    JoinStrategy strategy;
    const char* tag;
  };
  const Method methods[] = {{JoinStrategy::kScanHash, "S"},
                            {JoinStrategy::kBitmapHash, "B"},
                            {JoinStrategy::kLayeredMerge, "L"}};
  for (bool gaussian : {false, true}) {
    auto chain =
        BuildJoinChain(num_blocks, result_size, table_size, gaussian);
    for (const auto& method : methods) {
      double ms = RunJoin(chain.get(), method.strategy, result_size);
      ReportPoint(figure, std::string(method.tag) + (gaussian ? "G" : "U"), x,
                  "latency_ms", ms);
    }
  }
}

void Main() {
  int scale = BenchScale();
  // Paper: 10,000 txns per table, result 5,000; scaled 1/5.
  int table_size = 2000 * scale;

  ReportHeader("Fig13", "on-chain join Q5 latency vs number of blocks");
  for (int blocks : {100, 200, 300, 400, 500}) {
    RunPoint("Fig13", blocks * scale, 1000 * scale, table_size,
             std::to_string(blocks * scale));
  }

  ReportHeader("Fig14", "on-chain join Q5 latency vs result size");
  int fixed_blocks = 200 * scale;
  for (int result : {400, 800, 1200, 1600, 2000}) {
    RunPoint("Fig14", fixed_blocks, result * scale, table_size,
             std::to_string(result * scale));
  }
}

}  // namespace
}  // namespace bench
}  // namespace sebdb

int main() {
  sebdb::bench::Main();
  return 0;
}
