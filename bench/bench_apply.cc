// Block-apply throughput benchmark (DESIGN.md §13): serial apply vs the
// order-then-execute wave scheduler at pool sizes {1, 2, 4}, across three
// conflict shapes — non-conflicting (unique first-column keys: one wave),
// 50%-conflicting (half the block shares one hot key) and all-conflicting
// (every transaction hits the same key: one wave per transaction, the
// graceful-degradation bound). Each transaction carries a simulated
// execution cost (ChainOptions::execute_cost_micros — stored procedures /
// off-chain reads), the component the scheduler overlaps across a wave;
// apply time is read from TxnSchedulerStats::apply_micros so the figure
// isolates the apply pipeline from block building and segment appends.
// Headline criteria: >= 2.5x apply throughput at pool 4 on the
// non-conflicting shape, and all-conflicting within ~10% of serial.
// Writes a JSON summary to $SEBDB_BENCH_JSON (default BENCH_apply.json).
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bchainbench/bench_chain.h"
#include "common/thread_pool.h"
#include "core/txn_scheduler.h"
#include "storage/file.h"

namespace sebdb {
namespace bench {
namespace {

constexpr uint32_t kExecuteCostMicros = 200;
constexpr int kTxnsPerBlock = 32;

enum class Shape { kNonConflicting, kHalfConflicting, kAllConflicting };

const char* ShapeName(Shape s) {
  switch (s) {
    case Shape::kNonConflicting: return "non_conflicting";
    case Shape::kHalfConflicting: return "half_conflicting";
    case Shape::kAllConflicting: return "all_conflicting";
  }
  return "?";
}

Transaction MakeApplyTxn(const std::string& key, Timestamp ts) {
  Transaction txn("t", {Value::Str(key), Value::Int(ts % 1000)});
  txn.set_sender("org" + std::to_string(ts % 4));
  txn.set_ts(ts);
  txn.set_signature("bench-sig");
  return txn;
}

std::string KeyFor(Shape shape, int block, int i) {
  switch (shape) {
    case Shape::kNonConflicting:
      return "b" + std::to_string(block) + "_k" + std::to_string(i);
    case Shape::kHalfConflicting:
      return i % 2 == 0 ? "hot"
                        : "b" + std::to_string(block) + "_k" +
                              std::to_string(i);
    case Shape::kAllConflicting:
      return "hot";
  }
  return "k";
}

struct RunResult {
  uint64_t txns = 0;
  double apply_ms = 0;        // cumulative scheduler time, data blocks only
  double per_block_ms = 0;
  double txns_per_sec = 0;
  double waves_per_block = 0;
};

// Builds a fresh chain and applies `blocks` blocks of the given shape,
// reading apply time from the scheduler's own counters.
RunResult RunWorkload(Shape shape, bool serial, int pool_threads,
                      int blocks) {
  static std::atomic<uint64_t> run_counter{0};
  const std::string dir = "/tmp/sebdb_bench_apply_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(run_counter.fetch_add(1));
  (void)RemoveDirRecursive(dir);
  if (!CreateDirIfMissing(dir).ok()) abort();

  std::unique_ptr<ThreadPool> pool;
  ChainOptions options;
  options.verify_signatures = false;
  options.serial_apply = serial;
  options.execute_cost_micros = kExecuteCostMicros;
  if (pool_threads > 0) {
    pool = std::make_unique<ThreadPool>(pool_threads);
    options.pool = pool.get();
  }
  ChainManager chain("bench-node", nullptr);
  if (!chain.Open(options, dir).ok()) abort();

  Schema schema;
  if (!Schema::Create(
           "t", {{"k", ValueType::kString}, {"v", ValueType::kInt64}},
           &schema)
           .ok()) {
    abort();
  }
  Transaction schema_txn = Catalog::MakeSchemaTransaction(schema);
  schema_txn.set_sender("admin");
  schema_txn.set_ts(10);
  schema_txn.set_signature("bench-sig");
  std::vector<Transaction> setup;
  setup.push_back(std::move(schema_txn));
  if (!chain.AppendBatch(0, std::move(setup), 10, "sig").ok()) abort();

  const TxnSchedulerStats before = chain.apply_stats();
  Timestamp ts = 100;
  for (int b = 0; b < blocks; b++) {
    std::vector<Transaction> txns;
    for (int i = 0; i < kTxnsPerBlock; i++) {
      txns.push_back(MakeApplyTxn(KeyFor(shape, b, i), ts));
      ts += 10;
    }
    const uint64_t seq = chain.height() - 1;
    if (!chain.AppendBatch(seq, std::move(txns), ts, "sig").ok()) abort();
  }
  const TxnSchedulerStats after = chain.apply_stats();

  RunResult result;
  result.txns = static_cast<uint64_t>(blocks) * kTxnsPerBlock;
  result.apply_ms = (after.apply_micros - before.apply_micros) / 1000.0;
  result.per_block_ms = result.apply_ms / blocks;
  result.txns_per_sec =
      result.apply_ms > 0 ? result.txns / (result.apply_ms / 1000.0) : 0;
  if (!serial && after.blocks > before.blocks) {
    result.waves_per_block = static_cast<double>(after.waves - before.waves) /
                             (after.blocks - before.blocks);
  }
  if (!chain.Close().ok()) abort();
  (void)RemoveDirRecursive(dir);
  return result;
}

struct Config {
  const char* name;
  bool serial;
  int pool_threads;
};

void Main() {
  const int scale = BenchScale();
  const int blocks = 16 * scale;
  const char* json_path_env = std::getenv("SEBDB_BENCH_JSON");
  const std::string json_path =
      json_path_env != nullptr ? json_path_env : "BENCH_apply.json";

  ReportHeader("apply",
               "block apply: serial vs wave-scheduled at pools {1,2,4}, "
               "non/50%/all-conflicting, " +
                   std::to_string(kExecuteCostMicros) +
                   "us simulated execute cost per txn");

  const Config configs[] = {
      {"serial", true, 0},
      {"sched_pool1", false, 1},
      {"sched_pool2", false, 2},
      {"sched_pool4", false, 4},
  };
  const Shape shapes[] = {Shape::kNonConflicting, Shape::kHalfConflicting,
                          Shape::kAllConflicting};

  std::string json = "{\n  \"bench\": \"apply\",\n  \"scale\": " +
                     std::to_string(scale) +
                     ",\n  \"execute_cost_micros\": " +
                     std::to_string(kExecuteCostMicros) +
                     ",\n  \"txns_per_block\": " +
                     std::to_string(kTxnsPerBlock) + ",\n  \"blocks\": " +
                     std::to_string(blocks) + ",\n  \"runs\": [\n";

  double serial_nc_ms = 0, pool4_nc_ms = 0;
  double serial_ac_ms = 0, pool4_ac_ms = 0;
  bool first = true;
  for (Shape shape : shapes) {
    for (const Config& config : configs) {
      const RunResult r = RunWorkload(shape, config.serial,
                                      config.pool_threads, blocks);
      ReportPoint("apply", ShapeName(shape), config.name, "txns_per_sec",
                  r.txns_per_sec);
      ReportPoint("apply", ShapeName(shape), config.name, "per_block_ms",
                  r.per_block_ms);
      char buf[320];
      std::snprintf(
          buf, sizeof(buf),
          "    {\"workload\": \"%s\", \"config\": \"%s\", \"txns\": %llu, "
          "\"apply_ms\": %.3f, \"per_block_apply_ms\": %.3f, "
          "\"txns_per_sec\": %.1f, \"waves_per_block\": %.2f}",
          ShapeName(shape), config.name,
          static_cast<unsigned long long>(r.txns), r.apply_ms,
          r.per_block_ms, r.txns_per_sec, r.waves_per_block);
      json += first ? "" : ",\n";
      json += buf;
      first = false;

      if (shape == Shape::kNonConflicting && config.serial) {
        serial_nc_ms = r.apply_ms;
      }
      if (shape == Shape::kNonConflicting && config.pool_threads == 4) {
        pool4_nc_ms = r.apply_ms;
      }
      if (shape == Shape::kAllConflicting && config.serial) {
        serial_ac_ms = r.apply_ms;
      }
      if (shape == Shape::kAllConflicting && config.pool_threads == 4) {
        pool4_ac_ms = r.apply_ms;
      }
    }
  }

  // Headlines: parallel speedup where waves overlap, graceful degradation
  // where they cannot.
  const double speedup = pool4_nc_ms > 0 ? serial_nc_ms / pool4_nc_ms : 0;
  const double degradation =
      serial_ac_ms > 0 ? pool4_ac_ms / serial_ac_ms : 0;
  ReportPoint("apply", "headline", "non_conflicting_pool4", "speedup_x",
              speedup);
  ReportPoint("apply", "headline", "all_conflicting_pool4",
              "vs_serial_ratio", degradation);

  char tail[160];
  std::snprintf(tail, sizeof(tail),
                "\n  ],\n  \"speedup_nonconflicting_pool4_x\": %.2f,\n"
                "  \"allconflicting_pool4_vs_serial\": %.3f\n}\n",
                speedup, degradation);
  json += tail;

  std::ofstream out(json_path);
  out << json;
  printf("\nwrote %s\n", json_path.c_str());
}

}  // namespace
}  // namespace bench
}  // namespace sebdb

int main() {
  sebdb::bench::Main();
  return 0;
}
