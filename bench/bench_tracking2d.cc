// Figure 10 (paper §VII-C): two-dimension tracking query Q3
// (TRACE [start, end] OPERATOR = 'org1', OPERATION = 'transfer') over
// shrinking time windows TW1..TW5 (start at block n - n/2^{i-1}).
// Series: SI = single index (operator only, results filtered client-side),
// TI = two indices (operator AND operation intersected in the second
// level), each under uniform (U) and Gaussian (G) placement.
#include <cstdio>

#include "bchainbench/bench_chain.h"

namespace sebdb {
namespace bench {
namespace {

struct Workload {
  std::unique_ptr<BenchChain> chain;
  int num_blocks;
};

Workload Build(bool gaussian, int scale) {
  BenchChain::Options options;
  options.num_blocks = 200 * scale;
  options.txns_per_block = 100;
  auto chain = std::make_unique<BenchChain>("tracking2d", options);
  if (!chain->CreateDonationSchema().ok()) abort();

  // Paper: 10,000 transfer txns + 10,000 org1 txns, 1,000 of them both
  // (transfer sent by org1). Scaled by 1/5 at scale 1.
  int results = 200 * scale;           // transfer AND org1
  int transfer_only = 1800 * scale;    // transfer by other senders
  int org1_only = 1800 * scale;        // org1 sending donate
  std::vector<Transaction> special;
  for (int i = 0; i < results; i++) {
    special.push_back(MakeBenchTxn(
        "transfer", "org1",
        {Value::Str("proj"), Value::Str("d1"),
         Value::Str("school" + std::to_string(i % 7)), Value::Int(i)}));
  }
  for (int i = 0; i < transfer_only; i++) {
    special.push_back(MakeBenchTxn(
        "transfer", "org" + std::to_string(2 + i % 9),
        {Value::Str("proj"), Value::Str("d1"),
         Value::Str("school" + std::to_string(i % 7)), Value::Int(i)}));
  }
  for (int i = 0; i < org1_only; i++) {
    special.push_back(MakeBenchTxn(
        "donate", "org1",
        {Value::Str("d1"), Value::Str("proj"), Value::Int(i)}));
  }

  Placement placement;
  placement.gaussian = gaussian;
  placement.stddev = 20.0 * scale;
  Random rng(23);
  Status s = chain->Fill(std::move(special), placement, [&rng](int, int) {
    return MakeBenchTxn(
        "donate", "user" + std::to_string(rng.Uniform(50)),
        {Value::Str("d" + std::to_string(rng.Uniform(50))),
         Value::Str("proj"),
         Value::Int(static_cast<int64_t>(rng.Uniform(1000)))});
  });
  if (!s.ok()) abort();
  return {std::move(chain), options.num_blocks};
}

void Main() {
  int scale = BenchScale();
  ReportHeader("Fig10",
               "two-dimension tracking Q3 latency vs time window TW1..TW5");

  for (bool gaussian : {false, true}) {
    Workload w = Build(gaussian, scale);
    std::string suffix = gaussian ? "G" : "U";
    for (int tw = 1; tw <= 5; tw++) {
      // Window starts at block n - n / 2^{tw-1} (TW1 = whole chain) and
      // runs to the chain tip.
      int start_block = w.num_blocks - w.num_blocks / (1 << (tw - 1));
      Timestamp start =
          start_block == 0 ? 0 : w.chain->BlockTimestamp(start_block - 1) + 1;
      Timestamp end = w.chain->last_ts();
      std::string window =
          "[" + std::to_string(start) + ", " + std::to_string(end) + "]";

      // TI: both dimensions resolved through the layered indices.
      ExecOptions ti;
      ti.access_path = AccessPath::kLayered;
      ResultSet ti_result;
      WallTimer ti_timer;
      Status s = w.chain->Execute(
          "TRACE " + window + " OPERATOR = 'org1', OPERATION = 'transfer'",
          ti, &ti_result);
      double ti_ms = ti_timer.ElapsedMicros() / 1000.0;
      if (!s.ok()) abort();

      // SI: single index on the operator; operation filtered afterwards
      // (what a system with only a SenID index must do).
      ExecOptions si;
      si.access_path = AccessPath::kLayered;
      ResultSet si_result;
      WallTimer si_timer;
      s = w.chain->Execute("TRACE " + window + " OPERATOR = 'org1'", si,
                           &si_result);
      if (!s.ok()) abort();
      size_t filtered = 0;
      for (const auto& row : si_result.rows) {
        if (row[3].AsString() == "transfer") filtered++;
      }
      double si_ms = si_timer.ElapsedMicros() / 1000.0;
      if (filtered != ti_result.num_rows()) {
        fprintf(stderr, "SI/TI disagree: %zu vs %zu\n", filtered,
                ti_result.num_rows());
        abort();
      }

      std::string x = "TW" + std::to_string(tw);
      ReportPoint("Fig10", "SI" + suffix, x, "latency_ms", si_ms);
      ReportPoint("Fig10", "TI" + suffix, x, "latency_ms", ti_ms);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace sebdb

int main() {
  sebdb::bench::Main();
  return 0;
}
