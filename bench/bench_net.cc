// Transport benchmark (DESIGN.md §15): the same thin-client workload —
// signed thin.submit writes, then thin.stats point queries — driven against
// one full node over three transports:
//
//   sim        SimNetwork, the in-process simulation every test uses
//   tcp        TcpNetwork over loopback: real sockets, framing, CRC,
//              heartbeats, supervised reconnect
//   tcp_lossy  TcpNetwork with the socket-level fault shim dropping every
//              8th request frame and stalling the writer 1 ms per frame;
//              the client's RetryPolicy owns recovery
//
// Consensus batches are capped at one transaction so the measured latency
// is transport + commit + apply, not batching delay. Reports throughput and
// p50/p99 latency per phase; the lossy series shows what loss costs once
// retries absorb it (drops surface as retries and a fat p99, never as lost
// acks). Writes a JSON summary to $SEBDB_BENCH_JSON (default BENCH_net.json).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bchainbench/bench_chain.h"
#include "core/node.h"
#include "core/thin_client_transport.h"
#include "network/sim_network.h"
#include "network/tcp_network.h"
#include "storage/file.h"

namespace sebdb {
namespace bench {
namespace {

constexpr const char* kNodeId = "node1";
constexpr const char* kClientId = "client-0";

struct Phase {
  double ops_per_sec = 0;
  double p50_micros = 0;
  double p99_micros = 0;
};

struct Row {
  std::string name;
  Phase submit;
  Phase query;
  uint64_t retries = 0;       // client-side RPC re-attempts
  uint64_t random_drops = 0;  // frames the fault shim ate
};

Phase Summarize(std::vector<int64_t> lat_micros, int64_t total_micros) {
  Phase phase;
  if (lat_micros.empty() || total_micros <= 0) return phase;
  std::sort(lat_micros.begin(), lat_micros.end());
  phase.ops_per_sec =
      static_cast<double>(lat_micros.size()) * 1e6 / total_micros;
  phase.p50_micros = static_cast<double>(lat_micros[lat_micros.size() / 2]);
  phase.p99_micros =
      static_cast<double>(lat_micros[lat_micros.size() * 99 / 100]);
  return phase;
}

NodeOptions BenchNodeOptions(const std::string& dir) {
  NodeOptions options;
  options.node_id = kNodeId;
  options.data_dir = dir;
  options.participants = {kNodeId};
  // One txn per batch: submit latency measures the round trip, not how
  // long the batcher waited for company.
  options.consensus_options.max_batch_txns = 1;
  options.consensus_options.batch_timeout_millis = 5;
  options.enable_gossip = false;  // single node: nothing to anti-entropy
  options.rpc_server.workers = 4;
  options.rpc_server.max_queue = 256;
  return options;
}

RetryPolicy BenchRetryPolicy() {
  RetryPolicy policy;
  policy.max_attempts = 20;
  policy.attempt_timeout_millis = 250;
  policy.initial_backoff_millis = 5;
  policy.max_backoff_millis = 50;
  return policy;
}

// Runs the two phases against a started node through `transport`. Aborts on
// any terminal failure: the bench asserts the retry layer makes every
// scenario lossless.
Row Drive(const std::string& name, KeyStore* keystore,
          RpcThinTransport* transport, int txns) {
  Row row;
  row.name = name;

  // Submits: signed single-row inserts, one block each.
  std::vector<int64_t> lat;
  lat.reserve(txns);
  WallTimer submit_timer;
  for (int i = 0; i < txns; i++) {
    const std::string key = name + "-" + std::to_string(i);
    Transaction txn("kv", {Value::Str(key), Value::Str("payload-" + key)});
    txn.set_ts(1000 + i);
    if (!keystore->SignTransaction(kClientId, &txn).ok()) abort();
    WallTimer one;
    if (!transport->Submit(kNodeId, txn, nullptr).ok()) abort();
    lat.push_back(one.ElapsedMicros());
  }
  row.submit = Summarize(std::move(lat), submit_timer.ElapsedMicros());

  // Queries: thin.stats point reads (height + tip hash).
  lat.clear();
  WallTimer query_timer;
  for (int i = 0; i < txns; i++) {
    RpcThinTransport::NodeStats stats;
    WallTimer one;
    if (!transport->GetNodeStats(kNodeId, &stats).ok()) abort();
    lat.push_back(one.ElapsedMicros());
    if (i + 1 == txns && stats.height == 0) abort();
  }
  row.query = Summarize(std::move(lat), query_timer.ElapsedMicros());
  row.retries = transport->retries();
  return row;
}

std::string ScratchDir(const std::string& tag) {
  const std::string dir =
      "/tmp/sebdb_bench_net_" + tag + "_" + std::to_string(::getpid());
  (void)RemoveDirRecursive(dir);
  if (!CreateDirIfMissing(dir).ok()) abort();
  return dir;
}

void StartNode(SebdbNode* node, Network* network) {
  if (!node->Start(network).ok()) abort();
  ResultSet rs;
  if (!node->ExecuteSql("CREATE kv (k string, v string)", {}, &rs).ok()) {
    abort();
  }
}

Row RunSim(KeyStore* keystore, int txns) {
  const std::string dir = ScratchDir("sim");
  SimNetwork network;
  SebdbNode node(BenchNodeOptions(dir), keystore, /*offchain=*/nullptr);
  StartNode(&node, &network);
  RpcThinTransport transport(kClientId, &network, {kNodeId},
                             BenchRetryPolicy());
  Row row = Drive("sim", keystore, &transport, txns);
  node.Stop();
  (void)RemoveDirRecursive(dir);
  return row;
}

Row RunTcp(KeyStore* keystore, int txns, bool lossy) {
  const std::string name = lossy ? "tcp_lossy" : "tcp";
  const std::string dir = ScratchDir(name);

  // The node listens on an ephemeral loopback port; the client supervises
  // the one link and the node's replies ride the learned return route —
  // the same shape as a remote thin client against a deployed cluster.
  TcpNetworkOptions server_options;
  server_options.local_id = kNodeId;
  TcpNetwork server_net(server_options);
  if (!server_net.Start().ok()) abort();

  TcpNetworkOptions client_options;
  client_options.local_id = kClientId;
  client_options.peers.push_back(
      TcpPeer{kNodeId, "127.0.0.1", server_net.listen_port()});
  if (lossy) {
    // Every frame pays 1 ms on the wire; every 8th request vanishes. The
    // counter makes the loss pattern deterministic across runs.
    auto counter = std::make_shared<uint64_t>(0);
    client_options.send_fault = [counter](const Message&) {
      TcpNetworkOptions::Fault fault;
      fault.delay_millis = 1;
      fault.drop = (++*counter % 8 == 0);
      return fault;
    };
  }
  TcpNetwork client_net(client_options);
  if (!client_net.Start().ok()) abort();

  SebdbNode node(BenchNodeOptions(dir), keystore, /*offchain=*/nullptr);
  StartNode(&node, &server_net);
  RpcThinTransport transport(kClientId, &client_net, {kNodeId},
                             BenchRetryPolicy());

  // Warm up until the supervised link carries a round trip, so connect
  // backoff is not billed to the first submit.
  RpcThinTransport::NodeStats stats;
  for (int i = 0; i < 100 && !transport.GetNodeStats(kNodeId, &stats).ok();
       i++) {
  }

  Row row = Drive(name, keystore, &transport, txns);
  row.random_drops = client_net.stats().random_drops;
  node.Stop();
  client_net.Shutdown();
  server_net.Shutdown();
  (void)RemoveDirRecursive(dir);
  return row;
}

void AppendRow(const Row& row, bool last, std::string* json) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"transport\": \"%s\",\n"
      "     \"submit_tps\": %.1f, \"submit_p50_us\": %.0f, "
      "\"submit_p99_us\": %.0f,\n"
      "     \"query_qps\": %.1f, \"query_p50_us\": %.0f, "
      "\"query_p99_us\": %.0f,\n"
      "     \"retries\": %llu, \"random_drops\": %llu}%s\n",
      row.name.c_str(), row.submit.ops_per_sec, row.submit.p50_micros,
      row.submit.p99_micros, row.query.ops_per_sec, row.query.p50_micros,
      row.query.p99_micros, static_cast<unsigned long long>(row.retries),
      static_cast<unsigned long long>(row.random_drops), last ? "" : ",");
  *json += buf;
}

void Main() {
  const int txns = 128 * BenchScale();
  const char* json_path_env = std::getenv("SEBDB_BENCH_JSON");
  const std::string json_path =
      json_path_env != nullptr ? json_path_env : "BENCH_net.json";

  ReportHeader("net",
               "thin-client submit/query over SimNetwork vs TCP loopback vs "
               "TCP with induced loss (1/8 drop) and latency (1 ms/frame)");

  KeyStore keystore;
  if (!keystore.AddIdentity(kNodeId, std::string("sk:") + kNodeId).ok() ||
      !keystore.AddIdentity(kClientId, std::string("sk:") + kClientId).ok()) {
    abort();
  }

  std::vector<Row> rows;
  rows.push_back(RunSim(&keystore, txns));
  rows.push_back(RunTcp(&keystore, txns, /*lossy=*/false));
  rows.push_back(RunTcp(&keystore, txns, /*lossy=*/true));

  for (const Row& row : rows) {
    ReportPoint("net", row.name, "submit", "tps", row.submit.ops_per_sec);
    ReportPoint("net", row.name, "submit", "p50_us", row.submit.p50_micros);
    ReportPoint("net", row.name, "submit", "p99_us", row.submit.p99_micros);
    ReportPoint("net", row.name, "query", "qps", row.query.ops_per_sec);
    ReportPoint("net", row.name, "query", "p50_us", row.query.p50_micros);
    ReportPoint("net", row.name, "query", "p99_us", row.query.p99_micros);
    ReportPoint("net", row.name, "loss", "retries",
                static_cast<double>(row.retries));
  }

  std::string json = "{\n  \"bench\": \"net\",\n";
  json += "  \"txns_per_phase\": " + std::to_string(txns) + ",\n";
  json += "  \"scenarios\": [\n";
  for (size_t i = 0; i < rows.size(); i++) {
    AppendRow(rows[i], i + 1 == rows.size(), &json);
  }
  json += "  ]\n}\n";

  std::ofstream out(json_path);
  out << json;
  std::printf("wrote %s\n", json_path.c_str());
}

}  // namespace
}  // namespace bench
}  // namespace sebdb

int main() {
  sebdb::bench::Main();
  return 0;
}
