// Ablation studies for the design choices DESIGN.md calls out:
//   A1 — histogram bucket count ("height of the histogram is configurable
//        for different precisions", paper §IV-B): candidate-block false
//        positives and range-query latency vs bucket count.
//   A2 — MB-tree fanout (paper uses 4 KB pages): VO size and verify time
//        vs fanout.
//   A3 — block size (transactions per block): trade-off between scan and
//        layered random reads.
#include <cstdio>

#include "auth/mbtree.h"
#include "bchainbench/bench_chain.h"
#include "index/histogram.h"
#include "index/layered_index.h"

namespace sebdb {
namespace bench {
namespace {

constexpr int64_t kRangeLo = 100000;

// ---- A1: histogram buckets ----

void HistogramAblation(int scale) {
  ReportHeader("A1", "layered-index precision vs histogram bucket count");
  for (int buckets : {4, 16, 64, 100, 256}) {
    BenchChain::Options options;
    options.num_blocks = 200 * scale;
    options.txns_per_block = 100;
    BenchChain chain("ablation_hist", options);
    if (!chain.CreateDonationSchema().ok()) abort();

    // Results concentrated in a few blocks (Gaussian): a precise histogram
    // prunes the other blocks, a coarse one lumps the query range into a
    // bucket that filler values also occupy, so every block qualifies.
    int result = 1000;
    std::vector<Transaction> special;
    for (int i = 0; i < result; i++) {
      special.push_back(MakeBenchTxn(
          "donate", "u", {Value::Str("d"), Value::Str("p"),
                          Value::Int(kRangeLo + i)}));
    }
    Random rng(5);
    Placement placement;
    placement.gaussian = true;
    placement.stddev = 10.0;
    if (!chain
             .Fill(std::move(special), placement,
                   [&rng](int, int) {
                     return MakeBenchTxn(
                         "donate", "u",
                         {Value::Str("d"), Value::Str("p"),
                          Value::Int(static_cast<int64_t>(
                              rng.Uniform(kRangeLo)))});
                   })
             .ok()) {
      abort();
    }

    // Build a layered index with this bucket count directly.
    LayeredIndexOptions layered_options;
    layered_options.histogram_buckets = buckets;
    LayeredIndex index("ablation", layered_options,
                       [](const Transaction& txn, Value* out) {
                         if (txn.tname() != "donate" ||
                             txn.values().size() < 3) {
                           return false;
                         }
                         *out = txn.values()[2];
                         return true;
                       });
    // Histogram from a representative whole-domain sample (as the paper's
    // index creation samples historical transactions).
    {
      std::vector<Value> sample;
      for (int i = 0; i < 9000; i++) {
        sample.push_back(
            Value::Int(static_cast<int64_t>(rng.Uniform(kRangeLo))));
      }
      for (int i = 0; i < 1000; i++) {
        sample.push_back(Value::Int(kRangeLo + rng.Uniform(result)));
      }
      EqualDepthHistogram histogram;
      if (!EqualDepthHistogram::Build(std::move(sample), buckets, &histogram)
               .ok() ||
          !index.SetHistogram(std::move(histogram)).ok()) {
        abort();
      }
    }
    for (uint64_t h = 0; h < chain.chain().height(); h++) {
      std::shared_ptr<const Block> block;
      if (!chain.chain().store()->ReadBlock(h, &block).ok()) abort();
      if (!index.AddBlock(*block).ok()) abort();
    }

    Value lo = Value::Int(kRangeLo), hi = Value::Int(kRangeLo + result - 1);
    WallTimer timer;
    Bitmap candidates = index.CandidateBlocks(&lo, &hi);
    size_t pointers = 0;
    for (size_t bid : candidates.SetBits()) {
      std::vector<TxnPointer> hits;
      index.SearchBlock(bid, &lo, &hi, &hits);
      pointers += hits.size();
    }
    double ms = timer.ElapsedMicros() / 1000.0;
    std::string x = std::to_string(buckets);
    ReportPoint("A1", "candidate-blocks", x, "count", candidates.Count());
    ReportPoint("A1", "index-search", x, "latency_ms", ms);
    if (pointers != static_cast<size_t>(result)) abort();
  }
}

// ---- A2: MB-tree fanout ----

void MbTreeAblation() {
  ReportHeader("A2", "VO size and verification time vs MB-tree fanout");
  std::vector<MbTree::Entry> entries;
  for (int i = 0; i < 10000; i++) {
    entries.push_back({Value::Int(i),
                       "rec" + std::to_string(i) + std::string(280, 'x')});
  }
  auto key_fn = [](const Slice& record, Value* key) -> Status {
    std::string text = record.ToString();
    size_t pad = text.find('x');
    *key = Value::Int(std::stoll(text.substr(3, pad - 3)));
    return Status::OK();
  };
  for (size_t fanout : {4, 8, 16, 64, 256}) {
    MbTree::Options options;
    options.fanout = fanout;
    auto copy = entries;
    auto tree = MbTree::Build(std::move(copy), options);
    Value lo = Value::Int(5000), hi = Value::Int(5099);
    VerificationObject vo;
    if (!tree->ProveRange(&lo, &hi, &vo).ok()) abort();

    WallTimer timer;
    for (int i = 0; i < 50; i++) {
      std::vector<std::string> records;
      if (!MbTree::VerifyRange(tree->root_hash(), vo, &lo, &hi, key_fn,
                               &records)
               .ok()) {
        abort();
      }
    }
    double verify_ms = timer.ElapsedMicros() / 1000.0 / 50;
    std::string x = std::to_string(fanout);
    ReportPoint("A2", "vo-size", x, "kb", vo.ByteSize() / 1024.0);
    ReportPoint("A2", "verify", x, "latency_ms", verify_ms);
    ReportPoint("A2", "tree-height", x, "levels", tree->height());
  }
}

// ---- A3: transactions per block ----

void BlockSizeAblation(int scale) {
  ReportHeader("A3", "scan vs layered latency vs block size (fixed total "
                     "transactions)");
  int total_txns = 20000 * scale;
  for (int per_block : {50, 100, 200, 400}) {
    BenchChain::Options options;
    options.num_blocks = total_txns / per_block;
    options.txns_per_block = per_block;
    BenchChain chain("ablation_block", options);
    if (!chain.CreateDonationSchema().ok()) abort();

    int result = 500;
    std::vector<Transaction> special;
    for (int i = 0; i < result; i++) {
      special.push_back(MakeBenchTxn(
          "donate", "u", {Value::Str("d"), Value::Str("p"),
                          Value::Int(kRangeLo + i)}));
    }
    Random rng(6);
    if (!chain
             .Fill(std::move(special), Placement(),
                   [&rng](int, int) {
                     return MakeBenchTxn(
                         "donate", "u",
                         {Value::Str("d"), Value::Str("p"),
                          Value::Int(static_cast<int64_t>(
                              rng.Uniform(kRangeLo)))});
                   })
             .ok()) {
      abort();
    }
    ResultSet ddl;
    if (!chain.Execute("CREATE INDEX ON donate(amount)", ExecOptions(), &ddl)
             .ok()) {
      abort();
    }

    std::string sql = "SELECT * FROM donate WHERE amount BETWEEN " +
                      std::to_string(kRangeLo) + " AND " +
                      std::to_string(kRangeLo + result - 1);
    for (auto [path, tag] :
         {std::pair{AccessPath::kScan, "scan"},
          std::pair{AccessPath::kLayered, "layered"}}) {
      ExecOptions exec;
      exec.access_path = path;
      ResultSet rs;
      WallTimer timer;
      if (!chain.Execute(sql, exec, &rs).ok() ||
          rs.num_rows() != static_cast<size_t>(result)) {
        abort();
      }
      ReportPoint("A3", tag, std::to_string(per_block), "latency_ms",
                  timer.ElapsedMicros() / 1000.0);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace sebdb

int main() {
  int scale = sebdb::bench::BenchScale();
  sebdb::bench::HistogramAblation(scale);
  sebdb::bench::MbTreeAblation();
  sebdb::bench::BlockSizeAblation(scale);
  return 0;
}
