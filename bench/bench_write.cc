// Figure 7 (paper §VII-B): write performance (Q1) under the two consensus
// components — the Kafka-style orderer and the Tendermint-style engine — on
// a 4-node cluster with a growing number of closed-loop clients. Each client
// sends a transaction, waits for the commit response, then sends the next.
// Block cutting: 200 transactions or 200 ms, the paper's settings.
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>

#include "bchainbench/bench_chain.h"
#include "core/node.h"
#include "network/sim_network.h"

namespace sebdb {
namespace bench {
namespace {

struct RunResult {
  double throughput_tps;
  double mean_latency_ms;
};

RunResult RunCluster(ConsensusKind kind, int num_clients, int txns_per_client,
                     const std::string& tag) {
  SimNetwork net;
  KeyStore keystore;
  std::vector<std::string> ids = {"n0", "n1", "n2", "n3"};
  for (const auto& id : ids) keystore.AddIdentity(id, "secret-" + id);
  keystore.AddIdentity("client", "secret-client");

  static std::atomic<uint64_t> run_counter{0};
  std::string dir = "/tmp/sebdb_bench_write_" + tag + "_" +
                    std::to_string(::getpid()) + "_" +
                    std::to_string(run_counter.fetch_add(1));

  std::vector<std::unique_ptr<SebdbNode>> nodes;
  for (const auto& id : ids) {
    NodeOptions options;
    options.node_id = id;
    options.data_dir = dir + "/" + id;
    options.consensus = kind;
    options.participants = ids;
    options.consensus_options.max_batch_txns = 200;   // paper setting
    options.consensus_options.batch_timeout_millis = 200;
    options.enable_gossip = false;  // consensus already replicates
    auto node = std::make_unique<SebdbNode>(options, &keystore, nullptr);
    if (!node->Start(&net).ok()) abort();
    nodes.push_back(std::move(node));
  }
  ResultSet rs;
  if (!nodes[0]->ExecuteSql("CREATE donate (donor string, amount int)",
                            ExecOptions(), &rs)
           .ok()) {
    abort();
  }

  std::atomic<int64_t> total_latency_micros{0};
  std::atomic<int> completed{0};
  WallTimer timer;
  std::vector<std::thread> clients;
  for (int c = 0; c < num_clients; c++) {
    clients.emplace_back([&, c] {
      SebdbNode* node = nodes[c % nodes.size()].get();
      for (int i = 0; i < txns_per_client; i++) {
        Transaction txn;
        if (!node->MakeInsertTransaction(
                    "client", "donate",
                    {Value::Str("donor" + std::to_string(c)),
                     Value::Int(c * 100000 + i)},
                    &txn)
                 .ok()) {
          abort();
        }
        WallTimer request;
        if (!node->SubmitAndWait(std::move(txn)).ok()) return;
        total_latency_micros.fetch_add(request.ElapsedMicros());
        completed.fetch_add(1);
      }
    });
  }
  for (auto& client : clients) client.join();
  double elapsed_s = timer.ElapsedMicros() / 1e6;
  int done = completed.load();

  RunResult result;
  result.throughput_tps = done / elapsed_s;
  result.mean_latency_ms =
      done > 0 ? total_latency_micros.load() / 1000.0 / done : 0;

  for (auto& node : nodes) node->Stop();
  RemoveDirRecursive(dir);
  return result;
}

void Main() {
  int scale = BenchScale();
  int txns_per_client = 10 * scale;
  ReportHeader("Fig7", "write throughput and response time vs clients "
                       "(Kafka vs Tendermint, 4 nodes, 200 txns / 200 ms "
                       "blocks)");
  for (int clients : {4, 8, 16, 32, 64}) {
    RunResult kafka = RunCluster(ConsensusKind::kKafka, clients,
                                 txns_per_client, "kafka");
    ReportPoint("Fig7", "kafka", std::to_string(clients), "throughput_tps",
                kafka.throughput_tps);
    ReportPoint("Fig7", "kafka", std::to_string(clients), "latency_ms",
                kafka.mean_latency_ms);
    RunResult tm = RunCluster(ConsensusKind::kTendermint, clients,
                              txns_per_client, "tm");
    ReportPoint("Fig7", "tendermint", std::to_string(clients),
                "throughput_tps", tm.throughput_tps);
    ReportPoint("Fig7", "tendermint", std::to_string(clients), "latency_ms",
                tm.mean_latency_ms);
  }
}

}  // namespace
}  // namespace bench
}  // namespace sebdb

int main() {
  sebdb::bench::Main();
  return 0;
}
