// Figures 17–19 (paper §VII-F): authenticated queries from a thin client —
// ALI (authenticated layered index, two-phase protocol) vs the basic
// approach (transfer every block, recompute transaction Merkle roots).
// Metrics per block count: VO size (Fig. 17), query processing time at the
// server (Fig. 18), verification time at the client (Fig. 19), for the
// tracking query Q2 and the range query Q4.
#include <cstdio>

#include "auth/ali.h"
#include "bchainbench/bench_chain.h"
#include "storage/merkle_tree.h"

namespace sebdb {
namespace bench {
namespace {

constexpr int64_t kRangeLo = 100000;

struct Workload {
  std::unique_ptr<BenchChain> chain;
  int result_size;
};

Workload Build(int num_blocks, int result_size) {
  BenchChain::Options options;
  options.num_blocks = num_blocks;
  options.txns_per_block = 100;
  auto chain = std::make_unique<BenchChain>("auth", options);
  if (!chain->CreateDonationSchema().ok()) abort();

  // Result rows: donate transactions sent by org1 with amount in the query
  // range — Q2 (operator = org1) and Q4 (amount range) return the same set.
  std::vector<Transaction> special;
  for (int i = 0; i < result_size; i++) {
    special.push_back(MakeBenchTxn(
        "donate", "org1",
        {Value::Str("d1"), Value::Str("proj"), Value::Int(kRangeLo + i)}));
  }
  Random rng(57);
  Placement placement;  // uniform, per the paper's auth experiments
  Status s = chain->Fill(std::move(special), placement, [&rng](int, int) {
    return MakeBenchTxn(
        "donate", "user" + std::to_string(rng.Uniform(50)),
        {Value::Str("d" + std::to_string(rng.Uniform(50))),
         Value::Str("proj"),
         Value::Int(static_cast<int64_t>(rng.Uniform(kRangeLo)))});
  });
  if (!s.ok()) abort();

  ResultSet ddl;
  if (!chain->Execute("CREATE INDEX ON donate(amount)", ExecOptions(), &ddl)
           .ok()) {
    abort();
  }
  return {std::move(chain), result_size};
}

Status AmountKeyFn(const Slice& record, Value* key) {
  Transaction txn;
  Slice input = record;
  Status s = Transaction::DecodeFrom(&input, &txn);
  if (!s.ok()) return s;
  *key = txn.GetColumn(7);  // donate.amount
  return Status::OK();
}

Status SenderKeyFn(const Slice& record, Value* key) {
  Transaction txn;
  Slice input = record;
  Status s = Transaction::DecodeFrom(&input, &txn);
  if (!s.ok()) return s;
  *key = Value::Str(txn.sender());
  return Status::OK();
}

struct AuthMetrics {
  double vo_kb;
  double server_ms;
  double client_ms;
};

AuthMetrics RunAli(AuthenticatedLayeredIndex* ali, const Value* lo,
                   const Value* hi, const RecordKeyFn& key_fn,
                   size_t expected) {
  WallTimer server;
  AuthQueryResponse response;
  if (!ali->ProveRange(lo, hi, nullptr, ali->num_blocks(), &response).ok()) {
    abort();
  }
  double server_ms = server.ElapsedMicros() / 1000.0;

  Hash256 digest;
  if (!ali->ComputeDigest(lo, hi, nullptr, response.chain_height, &digest)
           .ok()) {
    abort();
  }

  WallTimer client;
  std::vector<std::string> records;
  Status s = AuthenticatedLayeredIndex::VerifyResponse(
      response, lo, hi, key_fn, {digest, digest}, 2, &records);
  double client_ms = client.ElapsedMicros() / 1000.0;
  if (!s.ok() || records.size() != expected) {
    fprintf(stderr, "ALI verify failed: %s (%zu records, expected %zu)\n",
            s.ToString().c_str(), records.size(), expected);
    abort();
  }
  return {response.ByteSize() / 1024.0, server_ms, client_ms};
}

AuthMetrics RunBasic(BenchChain* chain,
                     const std::function<bool(const Transaction&)>& keep,
                     size_t expected) {
  uint64_t height = chain->chain().height();
  std::vector<BlockHeader> headers(height);
  for (uint64_t h = 0; h < height; h++) {
    if (!chain->chain().GetHeader(h, &headers[h]).ok()) abort();
  }

  // Server: ship every block.
  WallTimer server;
  std::vector<std::string> records(height);
  size_t vo_bytes = 0;
  for (uint64_t h = 0; h < height; h++) {
    if (!chain->chain().GetBlockRecord(h, &records[h]).ok()) abort();
    vo_bytes += records[h].size();
  }
  double server_ms = server.ElapsedMicros() / 1000.0;

  // Client: recompute each block's transaction Merkle root, then filter.
  WallTimer client;
  size_t found = 0;
  for (uint64_t h = 0; h < height; h++) {
    Block block;
    Slice input(records[h]);
    if (!Block::DecodeFrom(&input, &block).ok()) abort();
    if (block.ComputeMerkleRoot() != headers[h].trans_root) abort();
    for (const auto& txn : block.transactions()) {
      if (keep(txn)) found++;
    }
  }
  double client_ms = client.ElapsedMicros() / 1000.0;
  if (found != expected) {
    fprintf(stderr, "basic found %zu, expected %zu\n", found, expected);
    abort();
  }
  return {vo_bytes / 1024.0, server_ms, client_ms};
}

void Main() {
  int scale = BenchScale();
  int result_size = 1000 * scale;  // paper: 10,000

  ReportHeader("Fig17-19", "authenticated Q2/Q4: VO size, server time, "
                           "client time — ALI vs basic, varying blocks");
  for (int blocks : {100, 200, 300, 400, 500}) {
    Workload w = Build(blocks * scale, result_size);
    std::string x = std::to_string(blocks * scale);

    Value lo = Value::Int(kRangeLo);
    Value hi = Value::Int(kRangeLo + result_size - 1);
    AuthenticatedLayeredIndex* amount_ali =
        w.chain->chain().indexes()->GetAli("donate", "amount");
    AuthMetrics q4 =
        RunAli(amount_ali, &lo, &hi, AmountKeyFn, result_size);

    Value org = Value::Str("org1");
    AuthenticatedLayeredIndex* senid_ali =
        w.chain->chain().indexes()->senid_ali();
    AuthMetrics q2 =
        RunAli(senid_ali, &org, &org, SenderKeyFn, result_size);

    AuthMetrics basic_q4 = RunBasic(
        w.chain.get(),
        [&](const Transaction& txn) {
          if (txn.tname() != "donate" || txn.values().size() < 3) return false;
          int64_t v = txn.values()[2].AsInt();
          return v >= kRangeLo && v < kRangeLo + result_size;
        },
        result_size);
    AuthMetrics basic_q2 = RunBasic(
        w.chain.get(),
        [](const Transaction& txn) { return txn.sender() == "org1"; },
        result_size);

    ReportPoint("Fig17", "ALI-Q2", x, "vo_kb", q2.vo_kb);
    ReportPoint("Fig17", "ALI-Q4", x, "vo_kb", q4.vo_kb);
    ReportPoint("Fig17", "Basic-Q2", x, "vo_kb", basic_q2.vo_kb);
    ReportPoint("Fig17", "Basic-Q4", x, "vo_kb", basic_q4.vo_kb);

    ReportPoint("Fig18", "ALI-Q2", x, "server_ms", q2.server_ms);
    ReportPoint("Fig18", "ALI-Q4", x, "server_ms", q4.server_ms);
    ReportPoint("Fig18", "Basic-Q2", x, "server_ms", basic_q2.server_ms);
    ReportPoint("Fig18", "Basic-Q4", x, "server_ms", basic_q4.server_ms);

    ReportPoint("Fig19", "ALI-Q2", x, "client_ms", q2.client_ms);
    ReportPoint("Fig19", "ALI-Q4", x, "client_ms", q4.client_ms);
    ReportPoint("Fig19", "Basic-Q2", x, "client_ms", basic_q2.client_ms);
    ReportPoint("Fig19", "Basic-Q4", x, "client_ms", basic_q4.client_ms);
  }
}

}  // namespace
}  // namespace bench
}  // namespace sebdb

int main() {
  sebdb::bench::Main();
  return 0;
}
