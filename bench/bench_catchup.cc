// Replica catch-up benchmark (DESIGN.md §12): a replica that fell `gap`
// blocks behind a peer catches up either by replaying the gap block by
// block (the gossip / block-repair path: decode + Merkle + hash-chain
// validation per block, index apply per block) or by checkpoint state sync
// (fetch the peer's newest checkpoint transfer images, verify each against
// its descriptor SHA-256, decompress, splice the bridge blocks, restore
// indexes from the serialized state, then replay only the delta above the
// checkpoint). Replay cost is O(gap) index work; state sync is
// O(checkpoint + delta), so past a modest gap the install wins and the
// margin widens with the gap. Both paths run in-process against the same
// peer chain — the bench measures the catch-up work itself, not the
// network. Writes a JSON summary to $SEBDB_BENCH_JSON (default
// BENCH_catchup.json).
#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bchainbench/bench_chain.h"
#include "common/sha256.h"
#include "storage/checkpoint.h"
#include "storage/file.h"

namespace sebdb {
namespace bench {
namespace {

Transaction MakeCatchupTxn(const std::string& table, const std::string& sender,
                           Timestamp ts, std::vector<Value> values) {
  Transaction txn(table, std::move(values));
  txn.set_sender(sender);
  txn.set_ts(ts);
  txn.set_signature("bench-sig");
  return txn;
}

ChainOptions CatchupChainOptions(uint64_t checkpoint_interval) {
  ChainOptions options;
  options.verify_signatures = false;
  options.checkpoint.interval_blocks = checkpoint_interval;
  options.checkpoint.pool_bytes = 64ull << 20;
  return options;
}

// Appends blocks [from, to) of the shared deterministic workload: 32
// transactions per block across two tables, one user-indexed — consensus
// batches are dense (the paper's evaluation runs ~1000 txns/block), so
// per-block catch-up cost is dominated by txn work, not block framing.
void AppendBlocks(ChainManager* chain, int from, int to) {
  for (int b = from; b < to; b++) {
    Timestamp ts = 1000 + b;
    std::vector<Transaction> txns;
    for (int j = 0; j < 16; j++) {
      txns.push_back(
          MakeCatchupTxn("t", "org" + std::to_string((b + j) % 4), ts,
                         {Value::Int((b * 16 + j) % 1000), Value::Str("x")}));
      txns.push_back(MakeCatchupTxn("u", "org" + std::to_string((b + j) % 3),
                                    ts, {Value::Str("y")}));
    }
    if (!chain->AppendBatch(static_cast<uint64_t>(b), std::move(txns), ts, "sig")
             .ok()) {
      abort();
    }
  }
}

// A fresh replica stuck at `prefix` blocks of the workload, in its own dir,
// carrying the continuous user index on t.v.
std::string BuildLaggingDir(int prefix) {
  static std::atomic<uint64_t> counter{0};
  const std::string dir = "/tmp/sebdb_bench_catchup_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(counter.fetch_add(1));
  (void)RemoveDirRecursive(dir);
  if (!CreateDirIfMissing(dir).ok()) abort();
  ChainManager chain("bench-node", nullptr);
  if (!chain.Open(CatchupChainOptions(0), dir).ok()) abort();
  if (!chain.indexes()
           ->CreateLayeredIndex("t", "v", Schema::kNumSystemColumns,
                                /*discrete=*/false)
           .ok()) {
    abort();
  }
  AppendBlocks(&chain, 0, prefix);
  if (!chain.Close().ok()) abort();
  return dir;
}

struct Row {
  int gap;
  double replay_ms;
  double statesync_ms;
  uint64_t ckpt_height;
  uint64_t delta_blocks;
  uint64_t raw_bytes;       // checkpoint files as stored
  uint64_t transfer_bytes;  // what actually crosses the wire (and is hashed)
};

void Main() {
  const int scale = BenchScale();
  const int kPrefix = 64;
  const uint64_t kCkptInterval = 256;
  const char* json_path_env = std::getenv("SEBDB_BENCH_JSON");
  const std::string json_path =
      json_path_env != nullptr ? json_path_env : "BENCH_catchup.json";

  ReportHeader("catchup",
               "replica catch-up: block-by-block replay vs checkpoint state "
               "sync, by gap (256-block checkpoint interval)");

  std::vector<Row> rows;
  for (int gap : {256, 2048, 8192}) {
    const int total = kPrefix + gap * scale;

    // The up-to-date peer both paths catch up from. Checkpointing every 256
    // blocks, so its newest checkpoint sits at most 255 blocks below tip.
    const std::string peer_dir = BuildLaggingDir(0);
    ChainManager peer("bench-peer", nullptr);
    if (!peer.Open(CatchupChainOptions(kCkptInterval), peer_dir).ok()) abort();
    AppendBlocks(&peer, 0, total);

    Row row;
    row.gap = total - kPrefix;

    // Path 1: block-by-block replay — exactly what gossip anti-entropy and
    // block repair do, minus the network hop.
    {
      const std::string dir = BuildLaggingDir(kPrefix);
      ChainManager lagging("bench-node", nullptr);
      if (!lagging.Open(CatchupChainOptions(0), dir).ok()) abort();
      WallTimer timer;
      for (int h = kPrefix; h < total; h++) {
        std::string record;
        if (!peer.store()->ReadRawRecord(h, &record).ok()) abort();
        if (!lagging.ApplyBlockRecord(h, record).ok()) abort();
      }
      row.replay_ms = timer.ElapsedMicros() / 1000.0;
      if (lagging.height() != static_cast<uint64_t>(total)) abort();
      if (!lagging.Close().ok()) abort();
      (void)RemoveDirRecursive(dir);
    }

    // Path 2: checkpoint state sync — describe, fetch each transfer image
    // in chunks, hash it against the descriptor, decompress, splice the
    // bridge, install, then replay only the delta above the checkpoint
    // (what RepairCoordinator does, minus the network hop).
    {
      const std::string dir = BuildLaggingDir(kPrefix);
      ChainManager lagging("bench-node", nullptr);
      if (!lagging.Open(CatchupChainOptions(0), dir).ok()) abort();
      WallTimer timer;
      ChainManager::CheckpointDescriptor desc;
      if (!peer.DescribeCheckpoint(&desc).ok()) abort();
      ChainManager::StateSyncPackage pkg;
      pkg.record = desc.record;
      row.raw_bytes = 0;
      row.transfer_bytes = 0;
      for (size_t i = 0; i < desc.record.files.size(); i++) {
        std::string transfer;
        uint64_t offset = 0;
        while (offset < desc.transfer_sizes[i]) {
          std::string chunk;
          if (!peer.ReadCheckpointTransfer(desc.record.files[i].name, offset,
                                           256 * 1024, &chunk)
                   .ok()) {
            abort();
          }
          offset += chunk.size();
          transfer += chunk;
        }
        // verify: the fetched transfer image must hash to the offered
        // descriptor before anything is decompressed or installed.
        if (!(Sha256::Digest(Slice(transfer)) == desc.file_hashes[i])) abort();
        std::string raw;
        if (!CheckpointManager::DecompressZeroRuns(
                 Slice(transfer), desc.record.files[i].size, &raw)
                 .ok()) {
          abort();
        }
        row.raw_bytes += raw.size();
        row.transfer_bytes += transfer.size();
        pkg.files.push_back(std::move(raw));
      }
      pkg.first_height = lagging.height();
      for (uint64_t h = pkg.first_height; h < desc.record.height; h++) {
        std::string record;
        if (!peer.store()->ReadRawRecord(h, &record).ok()) abort();
        pkg.blocks.push_back(std::move(record));
      }
      // verify: every package file passed its SHA-256 check above; the
      // bridge blocks are verified by the install itself.
      if (!lagging.InstallStateSync(pkg).ok()) abort();
      for (uint64_t h = desc.record.height; h < static_cast<uint64_t>(total);
           h++) {
        std::string record;
        if (!peer.store()->ReadRawRecord(h, &record).ok()) abort();
        if (!lagging.ApplyBlockRecord(h, record).ok()) abort();
      }
      row.statesync_ms = timer.ElapsedMicros() / 1000.0;
      row.ckpt_height = desc.record.height;
      row.delta_blocks = total - desc.record.height;
      if (lagging.height() != static_cast<uint64_t>(total)) abort();
      if (!lagging.Close().ok()) abort();
      (void)RemoveDirRecursive(dir);
    }

    ReportPoint("catchup", "replay", std::to_string(row.gap), "ms",
                row.replay_ms);
    ReportPoint("catchup", "statesync", std::to_string(row.gap), "ms",
                row.statesync_ms);
    ReportPoint("catchup", "speedup", std::to_string(row.gap), "x",
                row.replay_ms / row.statesync_ms);
    ReportPoint("catchup", "transfer", std::to_string(row.gap), "KB",
                row.transfer_bytes / 1024.0);
    rows.push_back(row);

    if (!peer.Close().ok()) abort();
    (void)RemoveDirRecursive(peer_dir);
  }

  std::string json = "{\n  \"bench\": \"catchup\",\n  \"scale\": " +
                     std::to_string(scale) +
                     ",\n  \"checkpoint_interval\": " +
                     std::to_string(kCkptInterval) + ",\n  \"runs\": [\n";
  for (size_t i = 0; i < rows.size(); i++) {
    char buf[400];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"gap\": %d, \"replay_ms\": %.3f, \"statesync_ms\": %.3f, "
        "\"ckpt_height\": %llu, \"delta_blocks\": %llu, "
        "\"raw_bytes\": %llu, \"transfer_bytes\": %llu, \"speedup\": %.3f}",
        rows[i].gap, rows[i].replay_ms, rows[i].statesync_ms,
        static_cast<unsigned long long>(rows[i].ckpt_height),
        static_cast<unsigned long long>(rows[i].delta_blocks),
        static_cast<unsigned long long>(rows[i].raw_bytes),
        static_cast<unsigned long long>(rows[i].transfer_bytes),
        rows[i].replay_ms / rows[i].statesync_ms);
    json += buf;
    json += i + 1 < rows.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";

  std::ofstream out(json_path);
  out << json;
  printf("\nwrote %s\n", json_path.c_str());
}

}  // namespace
}  // namespace bench
}  // namespace sebdb

int main() {
  sebdb::bench::Main();
  return 0;
}
