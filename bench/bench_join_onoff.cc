// Figures 15 & 16 (paper §VII-E): on–off-chain join Q6
// (SELECT * FROM onchain.distribute, offchain.donorinfo ON
//  distribute.donee = donorinfo.donee) under scan-hash (S), bitmap-hash (B)
// and layered-merge (L), uniform (U) vs Gaussian (G).
//   Fig. 15: fixed result size, varying number of blocks.
//   Fig. 16: fixed block count, varying result size.
#include <cstdio>

#include "bchainbench/bench_chain.h"

namespace sebdb {
namespace bench {
namespace {

std::unique_ptr<BenchChain> BuildChain(int num_blocks, int result_size,
                                       int table_size, bool gaussian) {
  BenchChain::Options options;
  options.num_blocks = num_blocks;
  options.txns_per_block = 100;
  auto chain = std::make_unique<BenchChain>("onoff", options);
  if (!chain->CreateDonationSchema().ok()) abort();

  // On-chain: `table_size` distribute txns; the first `result_size` have
  // donees present in the off-chain DonorInfo table.
  std::vector<Transaction> special;
  for (int i = 0; i < table_size; i++) {
    std::string donee = i < result_size ? "donee" + std::to_string(i)
                                        : "unknown" + std::to_string(i);
    special.push_back(MakeBenchTxn(
        "distribute", "org" + std::to_string(i % 11),
        {Value::Str("proj"), Value::Str("school" + std::to_string(i % 7)),
         Value::Str(donee), Value::Int(i)}));
  }
  Placement placement;
  placement.gaussian = gaussian;
  placement.stddev = 20.0;
  Random rng(41);
  Status s = chain->Fill(std::move(special), placement, [&rng](int, int) {
    return MakeBenchTxn(
        "donate", "user" + std::to_string(rng.Uniform(50)),
        {Value::Str("d" + std::to_string(rng.Uniform(50))),
         Value::Str("proj"),
         Value::Int(static_cast<int64_t>(rng.Uniform(1000)))});
  });
  if (!s.ok()) abort();

  // Off-chain: DonorInfo (maintained by the charity) with one row per
  // matching donee plus unmatched private rows.
  if (!chain->offchain()
           ->CreateTable("donorinfo", {{"donee", ValueType::kString},
                                       {"name", ValueType::kString},
                                       {"income", ValueType::kInt64}})
           .ok()) {
    abort();
  }
  for (int i = 0; i < result_size; i++) {
    chain->offchain()->Insert(
        "donorinfo", {Value::Str("donee" + std::to_string(i)),
                      Value::Str("name" + std::to_string(i)),
                      Value::Int(static_cast<int64_t>(rng.Uniform(100000)))});
  }
  for (int i = 0; i < result_size / 2; i++) {
    chain->offchain()->Insert(
        "donorinfo", {Value::Str("offonly" + std::to_string(i)),
                      Value::Str("x"), Value::Int(0)});
  }

  ResultSet ddl;
  if (!chain->Execute("CREATE INDEX ON distribute(donee)", ExecOptions(),
                      &ddl)
           .ok()) {
    abort();
  }
  return chain;
}

double RunJoin(BenchChain* chain, JoinStrategy strategy, size_t expected) {
  ExecOptions options;
  options.join_strategy = strategy;
  ResultSet result;
  WallTimer timer;
  Status s = chain->Execute(
      "SELECT * FROM onchain.distribute, offchain.donorinfo ON "
      "distribute.donee = donorinfo.donee",
      options, &result);
  double ms = timer.ElapsedMicros() / 1000.0;
  if (!s.ok() || result.num_rows() != expected) {
    fprintf(stderr, "on-off join failed: %s (rows %zu, expected %zu)\n",
            s.ToString().c_str(), result.num_rows(), expected);
    abort();
  }
  return ms;
}

void RunPoint(const std::string& figure, int num_blocks, int result_size,
              int table_size, const std::string& x) {
  struct Method {
    JoinStrategy strategy;
    const char* tag;
  };
  const Method methods[] = {{JoinStrategy::kScanHash, "S"},
                            {JoinStrategy::kBitmapHash, "B"},
                            {JoinStrategy::kLayeredMerge, "L"}};
  for (bool gaussian : {false, true}) {
    auto chain = BuildChain(num_blocks, result_size, table_size, gaussian);
    for (const auto& method : methods) {
      double ms = RunJoin(chain.get(), method.strategy, result_size);
      ReportPoint(figure, std::string(method.tag) + (gaussian ? "G" : "U"), x,
                  "latency_ms", ms);
    }
  }
}

void Main() {
  int scale = BenchScale();
  int table_size = 2000 * scale;  // paper: 10,000 distribute txns

  ReportHeader("Fig15", "on-off join Q6 latency vs number of blocks");
  for (int blocks : {100, 200, 300, 400, 500}) {
    RunPoint("Fig15", blocks * scale, 1000 * scale, table_size,
             std::to_string(blocks * scale));
  }

  ReportHeader("Fig16", "on-off join Q6 latency vs result size");
  int fixed_blocks = 200 * scale;
  for (int result : {400, 800, 1200, 1600, 2000}) {
    RunPoint("Fig16", fixed_blocks, result * scale, table_size,
             std::to_string(result * scale));
  }
}

}  // namespace
}  // namespace bench
}  // namespace sebdb

int main() {
  sebdb::bench::Main();
  return 0;
}
