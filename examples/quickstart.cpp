// Quickstart: a single-node SEBDB "cluster". Creates a table with the
// SQL-like language, inserts transactions through consensus, and runs
// relational and blockchain-specific queries.
//
//   build/examples/quickstart
#include <cstdio>

#include "core/node.h"
#include "storage/file.h"
#include "network/sim_network.h"

using namespace sebdb;

namespace {

void Check(const Status& s, const char* what) {
  if (!s.ok()) {
    fprintf(stderr, "%s failed: %s\n", what, s.ToString().c_str());
    exit(1);
  }
}

}  // namespace

int main() {
  std::string dir = "/tmp/sebdb_quickstart";
  RemoveDirRecursive(dir);

  // A single-node deployment: the node is also the Kafka-style orderer.
  SimNetwork net;
  KeyStore keystore;
  Check(keystore.AddIdentity("node1", "node1-secret"), "add identity");

  NodeOptions options;
  options.node_id = "node1";
  options.data_dir = dir;
  options.consensus = ConsensusKind::kKafka;
  options.participants = {"node1"};
  options.consensus_options.max_batch_txns = 10;
  options.consensus_options.batch_timeout_millis = 20;
  options.enable_gossip = false;

  SebdbNode node(options, &keystore, /*offchain=*/nullptr);
  Check(node.Start(&net), "start node");

  // 1. Declare a table — every transaction of type "donate" is a tuple.
  ResultSet rs;
  Check(node.ExecuteSql(
            "CREATE donate (donor string, project string, amount decimal)",
            {}, &rs),
        "CREATE");
  printf("created table: donate(donor, project, amount)\n");

  // 2. Insert transactions; each goes through consensus into a block.
  const char* inserts[] = {
      "INSERT INTO donate VALUES ('Jack', 'Education', 100)",
      "INSERT INTO donate VALUES ('Mary', 'Education', 250.5)",
      "INSERT INTO donate VALUES ('Ann',  'Health',    75.25)",
      "INSERT INTO donate VALUES ('Jack', 'Health',    40)",
  };
  for (const char* sql : inserts) Check(node.ExecuteSql(sql, {}, &rs), sql);
  printf("inserted %zu donations; chain height is now %llu\n",
         std::size(inserts),
         static_cast<unsigned long long>(node.chain().height()));

  // 3. Relational queries over on-chain data.
  ResultSet result;
  Check(node.ExecuteSql(
            "SELECT donor, amount FROM donate WHERE amount BETWEEN 50 AND "
            "300",
            {}, &result),
        "SELECT");
  printf("\ndonations between 50 and 300:\n%s\n",
         result.ToString().c_str());

  // Parameterized statements bind '?' positionally.
  ExecOptions params;
  params.params = {Value::Str("Jack")};
  Check(node.ExecuteSql("SELECT * FROM donate WHERE donor = ?", params,
                        &result),
        "SELECT ?");
  printf("Jack's donations: %zu rows\n", result.num_rows());

  // 4. Blockchain-specific queries.
  Check(node.ExecuteSql("TRACE OPERATOR = 'node1'", {}, &result), "TRACE");
  printf("\ntrack everything node1 sent (%zu transactions):\n%s\n",
         result.num_rows(), result.ToString(5).c_str());

  Check(node.ExecuteSql("GET BLOCK ID=1", {}, &result), "GET BLOCK");
  printf("block 1: %s\n", result.ToString().c_str());

  // 5. EXPLAIN shows the chosen access path.
  Check(node.ExecuteSql(
            "EXPLAIN SELECT * FROM donate WHERE amount BETWEEN 50 AND 300",
            {}, &result),
        "EXPLAIN");
  printf("plan without index: %s\n", result.plan.c_str());
  Check(node.ExecuteSql("CREATE INDEX ON donate(amount)", {}, &result),
        "CREATE INDEX");
  Check(node.ExecuteSql(
            "EXPLAIN SELECT * FROM donate WHERE amount BETWEEN 50 AND 300",
            {}, &result),
        "EXPLAIN 2");
  printf("plan with layered index: %s\n", result.plan.c_str());

  node.Stop();
  RemoveDirRecursive(dir);
  printf("\nquickstart finished OK\n");
  return 0;
}
