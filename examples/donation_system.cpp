// The paper's running example (Example 1, §I): a donation system on a
// 4-node consortium. Donations flow donor -> project -> organization ->
// donee across three on-chain tables, while each site keeps private
// off-chain data in its local RDBMS. Demonstrates multi-node consensus,
// tracking (TRACE), on-chain joins (donation flow) and on–off-chain joins
// (donee details), plus a stored procedure defining the DApp logic.
//
//   build/examples/donation_system
#include <cstdio>

#include "core/node.h"
#include "core/procedure.h"
#include "storage/file.h"
#include "network/sim_network.h"

using namespace sebdb;

namespace {

void Check(const Status& s, const char* what) {
  if (!s.ok()) {
    fprintf(stderr, "%s failed: %s\n", what, s.ToString().c_str());
    exit(1);
  }
}

bool WaitForHeight(SebdbNode* node, uint64_t height) {
  for (int i = 0; i < 1000; i++) {
    if (node->chain().height() >= height) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

}  // namespace

int main() {
  std::string dir = "/tmp/sebdb_donation";
  RemoveDirRecursive(dir);

  SimNetwork net;
  KeyStore keystore;
  std::vector<std::string> ids = {"charity", "school1", "welfare",
                                  "nursinghome"};
  for (const auto& id : ids) {
    Check(keystore.AddIdentity(id, id + "-secret"), "identity");
  }

  // Each participant runs a full node; school1 keeps DoneeInfo off-chain.
  OffchainDb school_db;
  Check(school_db.CreateTable("doneeinfo", {{"donee", ValueType::kString},
                                            {"family_income", ValueType::kInt64},
                                            {"school", ValueType::kString}}),
        "off-chain table");
  Check(school_db.Insert("doneeinfo", {Value::Str("Tom"), Value::Int(12000),
                                       Value::Str("School1")}),
        "off-chain row");
  Check(school_db.Insert("doneeinfo", {Value::Str("Lily"), Value::Int(9000),
                                       Value::Str("School1")}),
        "off-chain row");

  std::vector<std::unique_ptr<SebdbNode>> nodes;
  for (const auto& id : ids) {
    NodeOptions options;
    options.node_id = id;
    options.data_dir = dir + "/" + id;
    options.consensus = ConsensusKind::kKafka;
    options.participants = ids;
    options.consensus_options.max_batch_txns = 4;
    options.consensus_options.batch_timeout_millis = 20;
    options.gossip.interval_millis = 10;
    auto node = std::make_unique<SebdbNode>(
        options, &keystore, id == "school1" ? &school_db : nullptr);
    Check(node->Start(&net), "start node");
    nodes.push_back(std::move(node));
  }
  SebdbNode* charity = nodes[0].get();
  SebdbNode* school = nodes[1].get();

  // Schemas (the charity declares them; schema-sync transactions replicate
  // them to every node).
  ResultSet rs;
  Check(charity->ExecuteSql(
            "CREATE donate (donor string, project string, amount decimal)",
            {}, &rs),
        "CREATE donate");
  Check(charity->ExecuteSql(
            "CREATE transfer (project string, organization string, amount "
            "decimal)",
            {}, &rs),
        "CREATE transfer");
  Check(charity->ExecuteSql(
            "CREATE distribute (organization string, donee string, amount "
            "decimal)",
            {}, &rs),
        "CREATE distribute");

  // The donation flow of the paper's Example 1.
  const char* events[] = {
      "INSERT INTO donate VALUES ('Jack', 'Education', 100)",
      "INSERT INTO donate VALUES ('Rose', 'Education', 1000)",
      "INSERT INTO transfer VALUES ('Education', 'School1', 1000)",
      "INSERT INTO distribute VALUES ('School1', 'Tom', 50)",
      "INSERT INTO distribute VALUES ('School1', 'Lily', 30)",
  };
  for (const char* sql : events) Check(charity->ExecuteSql(sql, {}, &rs), sql);
  uint64_t height = charity->chain().height();
  for (auto& node : nodes) {
    if (!WaitForHeight(node.get(), height)) {
      fprintf(stderr, "node %s did not catch up\n", node->node_id().c_str());
      return 1;
    }
  }
  printf("all %zu nodes at height %llu, tips agree: %s\n", nodes.size(),
         static_cast<unsigned long long>(height),
         charity->chain().tip_hash().ToHex().substr(0, 16).c_str());

  // Tracking: everything the charity sent.
  ResultSet result;
  Check(school->ExecuteSql("TRACE OPERATOR = 'charity'", {}, &result),
        "TRACE");
  printf("\ncharity's on-chain activity (%zu events):\n%s\n",
         result.num_rows(), result.ToString().c_str());

  // On-chain join: how transferred money was distributed.
  Check(school->ExecuteSql(
            "SELECT transfer.organization, distribute.donee, "
            "distribute.amount FROM transfer, distribute ON "
            "transfer.organization = distribute.organization",
            {}, &result),
        "on-chain join");
  printf("donation flow (transfer >< distribute):\n%s\n",
         result.ToString().c_str());

  // On-off join at school1: distributions enriched with private donee data.
  Check(school->ExecuteSql(
            "SELECT distribute.donee, distribute.amount, "
            "doneeinfo.family_income FROM onchain.distribute, "
            "offchain.doneeinfo ON distribute.donee = doneeinfo.donee",
            {}, &result),
        "on-off join");
  printf("distributions with private donee info (school1 only):\n%s\n",
         result.ToString().c_str());

  // A DApp as a stored procedure: one donation event end-to-end.
  ProcedureRegistry procedures;
  Check(procedures.Register(
            "donate_and_report",
            {"INSERT INTO donate VALUES (?, ?, ?)",
             "SELECT donor, amount FROM donate WHERE project = ?"}),
        "register procedure");
  std::vector<ResultSet> proc_results;
  Check(procedures.Invoke(charity, "donate_and_report",
                          {Value::Str("Ann"), Value::Str("Education"),
                           Value::Dec(Decimal::FromDouble(75.5)),
                           Value::Str("Education")},
                          &proc_results),
        "invoke procedure");
  printf("after the donate_and_report procedure, Education has %zu "
         "donations\n",
         proc_results[1].num_rows());

  for (auto& node : nodes) node->Stop();
  RemoveDirRecursive(dir);
  printf("\ndonation_system finished OK\n");
  return 0;
}
