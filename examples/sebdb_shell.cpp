// Interactive SEBDB shell: a single-node deployment with a REPL over the
// SQL-like language. State persists in the data directory across runs
// (recovery replays the chain into catalog and indices).
//
//   build/examples/sebdb_shell [data_dir]
//
// Try:
//   CREATE donate (donor string, project string, amount decimal)
//   INSERT INTO donate VALUES ('Jack', 'Education', 100)
//   SELECT * FROM donate WHERE amount > 50
//   SELECT count(*), sum(amount) FROM donate
//   CREATE INDEX ON donate(amount)
//   EXPLAIN SELECT * FROM donate WHERE amount BETWEEN 10 AND 200
//   TRACE OPERATOR = 'shell'
//   GET BLOCK ID=1
//   .help | .tables | .height | .quit
#include <cstdio>
#include <iostream>
#include <string>

#include "core/node.h"
#include "network/sim_network.h"

using namespace sebdb;

namespace {

void PrintHelp() {
  printf(
      "statements: CREATE <table>(...), CREATE [DISCRETE] INDEX ON t(c),\n"
      "            INSERT INTO t VALUES (...), SELECT ... [WHERE] [WINDOW],\n"
      "            TRACE [s,e] OPERATOR=.. OPERATION=.., GET BLOCK "
      "ID|TID|TS=..,\n"
      "            EXPLAIN <statement>\n"
      "dot commands: .help .tables .height .quit\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "/tmp/sebdb_shell_data";

  SimNetwork net;
  KeyStore keystore;
  keystore.AddIdentity("shell", "shell-secret");

  NodeOptions options;
  options.node_id = "shell";
  options.data_dir = dir;
  options.consensus = ConsensusKind::kKafka;
  options.participants = {"shell"};
  options.consensus_options.max_batch_txns = 1;  // one block per statement
  options.consensus_options.batch_timeout_millis = 5;
  options.enable_gossip = false;

  SebdbNode node(options, &keystore, nullptr);
  Status s = node.Start(&net);
  if (!s.ok()) {
    fprintf(stderr, "start failed: %s\n", s.ToString().c_str());
    return 1;
  }
  printf("SEBDB shell — data dir %s, chain height %llu. Type .help\n",
         dir.c_str(), static_cast<unsigned long long>(node.chain().height()));

  std::string line;
  while (true) {
    printf("sebdb> ");
    fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line[0] == '.') {
      if (line == ".quit" || line == ".exit") break;
      if (line == ".help") {
        PrintHelp();
      } else if (line == ".tables") {
        for (const auto& name : node.chain().catalog()->TableNames()) {
          Schema schema;
          node.chain().catalog()->GetSchema(name, &schema);
          printf("  %s\n", schema.ToString().c_str());
        }
      } else if (line == ".height") {
        printf("chain height: %llu, tip %s\n",
               static_cast<unsigned long long>(node.chain().height()),
               node.chain().tip_hash().ToHex().substr(0, 16).c_str());
      } else {
        printf("unknown command; try .help\n");
      }
      continue;
    }
    ResultSet result;
    s = node.ExecuteSql(line, {}, &result);
    if (!s.ok()) {
      printf("error: %s\n", s.ToString().c_str());
      continue;
    }
    if (!result.plan.empty() && result.rows.empty() &&
        result.columns.empty()) {
      printf("ok (%s)\n", result.plan.c_str());
    } else {
      printf("%s(%zu rows)\n", result.ToString(50).c_str(),
             result.num_rows());
    }
  }
  node.Stop();
  printf("bye\n");
  return 0;
}
