// Supply-chain provenance: a second domain the paper's intro motivates
// ("traceability of food ingredient"). Batches of produce move
// farm -> processor -> retailer as on-chain transactions; a recall uses
// tracking queries and on-chain joins to follow one batch end to end, with
// time windows narrowing the search. Also shows access-control channels
// keeping a processor's internal table private.
//
//   build/examples/supply_chain_trace
#include <cstdio>

#include "core/node.h"
#include "storage/file.h"
#include "network/sim_network.h"

using namespace sebdb;

namespace {

void Check(const Status& s, const char* what) {
  if (!s.ok()) {
    fprintf(stderr, "%s failed: %s\n", what, s.ToString().c_str());
    exit(1);
  }
}

bool WaitForHeight(SebdbNode* node, uint64_t height) {
  for (int i = 0; i < 1000; i++) {
    if (node->chain().height() >= height) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

}  // namespace

int main() {
  std::string dir = "/tmp/sebdb_supply_chain";
  RemoveDirRecursive(dir);

  SimNetwork net;
  KeyStore keystore;
  std::vector<std::string> ids = {"farm", "processor", "retailer"};
  for (const auto& id : ids) keystore.AddIdentity(id, id + "-secret");

  std::vector<std::unique_ptr<SebdbNode>> nodes;
  for (const auto& id : ids) {
    NodeOptions options;
    options.node_id = id;
    options.data_dir = dir + "/" + id;
    options.consensus = ConsensusKind::kKafka;
    options.participants = ids;
    options.consensus_options.max_batch_txns = 5;
    options.consensus_options.batch_timeout_millis = 20;
    options.gossip.interval_millis = 10;
    auto node = std::make_unique<SebdbNode>(options, &keystore, nullptr);
    Check(node->Start(&net), "start");
    nodes.push_back(std::move(node));
  }
  SebdbNode* farm = nodes[0].get();
  SebdbNode* processor = nodes[1].get();
  SebdbNode* retailer = nodes[2].get();

  ResultSet rs;
  Check(farm->ExecuteSql(
            "CREATE harvest (batch string, crop string, kg int)", {}, &rs),
        "CREATE harvest");
  Check(farm->ExecuteSql(
            "CREATE process (batch string, product string, lot string)", {},
            &rs),
        "CREATE process");
  Check(farm->ExecuteSql(
            "CREATE ship (lot string, store string, units int)", {}, &rs),
        "CREATE ship");
  // The processor's internal QA table is channel-protected.
  Check(farm->ExecuteSql("CREATE qa (lot string, passed int)", {}, &rs),
        "CREATE qa");
  for (auto& node : nodes) {
    WaitForHeight(node.get(), farm->chain().height());
    Check(node->access_control()->AssignTable("qa", "processor-channel"),
          "assign channel");
    Check(node->access_control()->AddMember("processor-channel", "processor"),
          "add member");
  }

  // Produce moves through the chain over several days.
  struct Event {
    SebdbNode* who;
    const char* sql;
  };
  const Event events[] = {
      {farm, "INSERT INTO harvest VALUES ('B-001', 'spinach', 500)"},
      {farm, "INSERT INTO harvest VALUES ('B-002', 'kale', 300)"},
      {processor, "INSERT INTO process VALUES ('B-001', 'salad-mix', 'L-77')"},
      {processor, "INSERT INTO process VALUES ('B-002', 'smoothie', 'L-78')"},
      {processor, "INSERT INTO qa VALUES ('L-77', 1)"},
      {retailer, "INSERT INTO ship VALUES ('L-77', 'store-12', 200)"},
      {retailer, "INSERT INTO ship VALUES ('L-77', 'store-34', 150)"},
      {retailer, "INSERT INTO ship VALUES ('L-78', 'store-12', 90)"},
  };
  for (const auto& event : events) {
    Check(event.who->ExecuteSql(event.sql, {}, &rs), event.sql);
  }
  uint64_t height = farm->chain().height();
  for (auto& node : nodes) WaitForHeight(node.get(), height);
  printf("supply chain recorded; chain height %llu\n\n",
         static_cast<unsigned long long>(height));

  // RECALL: batch B-001 is contaminated. Follow it downstream with an
  // on-chain join chain: harvest -> process -> ship.
  ResultSet affected_lots;
  Check(retailer->ExecuteSql(
            "SELECT process.lot, process.product FROM harvest, process ON "
            "harvest.batch = process.batch WHERE harvest.batch = 'B-001'",
            {}, &affected_lots),
        "join harvest-process");
  printf("lots made from batch B-001:\n%s\n",
         affected_lots.ToString().c_str());

  ResultSet stores;
  Check(retailer->ExecuteSql(
            "SELECT ship.store, ship.units FROM process, ship ON "
            "process.lot = ship.lot WHERE process.batch = 'B-001'",
            {}, &stores),
        "join process-ship");
  printf("stores that received the recalled product:\n%s\n",
         stores.ToString().c_str());

  // Who touched the chain, and when? Track the processor's operations.
  ResultSet track;
  Check(retailer->ExecuteSql("TRACE OPERATOR = 'processor'", {}, &track),
        "TRACE processor");
  printf("processor's on-chain operations (%zu):\n%s\n", track.num_rows(),
         track.ToString().c_str());

  // The private QA table is invisible to the retailer but not the processor.
  Status denied = retailer->ExecuteSql("SELECT * FROM qa", {}, &rs);
  printf("retailer reading qa -> %s\n", denied.ToString().c_str());
  Check(processor->ExecuteSql("SELECT * FROM qa", {}, &rs), "processor qa");
  printf("processor reading qa -> OK (%zu rows)\n\n", rs.num_rows());

  // Block-level provenance: which block carries the first shipment?
  ResultSet block;
  Check(retailer->ExecuteSql("TRACE OPERATOR = 'retailer'", {}, &track),
        "trace retailer");
  int64_t first_tid = track.rows[0][0].AsInt();
  Check(retailer->ExecuteSql(
            "GET BLOCK TID=" + std::to_string(first_tid), {}, &block),
        "GET BLOCK");
  printf("first shipment lives in block:\n%s\n", block.ToString().c_str());

  for (auto& node : nodes) node->Stop();
  RemoveDirRecursive(dir);
  printf("supply_chain_trace finished OK\n");
  return 0;
}
