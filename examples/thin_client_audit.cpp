// Thin-client audit (paper §VI): a donor with only block headers verifies
// query results from untrusted full nodes. Shows the two-phase ALI protocol
// (VO + auxiliary digests), the credibility formula for choosing how many
// auxiliary nodes must agree, and what happens when a malicious node forges
// a response.
//
//   build/examples/thin_client_audit
#include <cstdio>

#include "auth/credibility.h"
#include "core/node.h"
#include "core/thin_client.h"
#include "storage/file.h"
#include "network/sim_network.h"

using namespace sebdb;

namespace {

void Check(const Status& s, const char* what) {
  if (!s.ok()) {
    fprintf(stderr, "%s failed: %s\n", what, s.ToString().c_str());
    exit(1);
  }
}

bool WaitForHeight(SebdbNode* node, uint64_t height) {
  for (int i = 0; i < 1000; i++) {
    if (node->chain().height() >= height) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

}  // namespace

int main() {
  std::string dir = "/tmp/sebdb_thin_client";
  RemoveDirRecursive(dir);

  SimNetwork net;
  KeyStore keystore;
  std::vector<std::string> ids = {"n0", "n1", "n2", "n3"};
  for (const auto& id : ids) keystore.AddIdentity(id, id + "-secret");
  keystore.AddIdentity("org1", "org1-secret");

  std::vector<std::unique_ptr<SebdbNode>> nodes;
  for (const auto& id : ids) {
    NodeOptions options;
    options.node_id = id;
    options.data_dir = dir + "/" + id;
    options.consensus = ConsensusKind::kPbft;  // BFT consortium
    options.participants = ids;
    options.consensus_options.max_batch_txns = 10;
    options.consensus_options.batch_timeout_millis = 20;
    options.gossip.interval_millis = 10;
    auto node = std::make_unique<SebdbNode>(options, &keystore, nullptr);
    Check(node->Start(&net), "start node");
    nodes.push_back(std::move(node));
  }

  ResultSet rs;
  Check(nodes[0]->ExecuteSql("CREATE donate (donor string, amount int)", {},
                             &rs),
        "CREATE");
  for (int i = 0; i < 40; i++) {
    Transaction txn;
    Check(nodes[0]->MakeInsertTransaction(
              "org1", "donate",
              {Value::Str("donor" + std::to_string(i % 4)), Value::Int(i)},
              &txn),
          "make txn");
    Check(nodes[0]->SubmitAndWait(std::move(txn)), "submit");
  }
  uint64_t height = nodes[0]->chain().height();
  for (auto& node : nodes) {
    if (!WaitForHeight(node.get(), height)) return 1;
    Check(node->ExecuteSql("CREATE INDEX ON donate(amount)", {}, &rs),
          "index");
  }
  printf("4-node PBFT consortium at height %llu, 40 donations committed\n",
         static_cast<unsigned long long>(height));

  // How many matching digests does the client need? Suppose up to 1 of the
  // 4 nodes may be Byzantine (PBFT's f).
  CredibilityParams params;
  params.byzantine_fraction = 0.25;
  params.requests = 3;
  params.max_byzantine = 1;
  for (int m = 1; m <= 2; m++) {
    params.matching = m;
    printf("  m=%d identical digests -> P(wrong) = %.4f\n", m,
           DigestWrongProbability(params));
  }
  printf("  (m=2 exceeds the Byzantine bound, so 2 matching digests are "
         "conclusive)\n\n");

  // The thin client holds headers only and talks to the full nodes over
  // the network (every call below is an RPC round trip).
  ThinClient client(
      std::make_unique<RpcThinTransport>("donor-phone", &net, ids));
  Check(client.SyncHeaders(), "sync headers");
  printf("thin client synced %zu block headers over the network\n",
         client.num_headers());

  // Authenticated range query: donations with amount in [10, 19].
  Schema schema;
  Check(nodes[0]->chain().catalog()->GetSchema("donate", &schema), "schema");
  int column_index = schema.ColumnIndex("amount");
  Value lo = Value::Int(10), hi = Value::Int(19);
  std::vector<Transaction> results;
  AuthQueryStats stats;
  Check(client.AuthRangeQuery("donate", "amount", column_index, &lo, &hi,
                              /*num_auxiliary=*/3, /*required_matching=*/2,
                              &results, &stats),
        "auth range query");
  printf("\nauthenticated range [10,19]: %zu results, VO %zu bytes, "
         "server %.2f ms, client verify %.2f ms\n",
         results.size(), stats.vo_bytes, stats.server_micros / 1000.0,
         stats.client_micros / 1000.0);

  // Authenticated tracking: all of org1's transactions.
  results.clear();
  Check(client.AuthTraceQuery(/*by_sender=*/true, "org1", 3, 2, &results,
                              &stats),
        "auth trace");
  printf("authenticated TRACE OPERATOR='org1': %zu results verified\n",
         results.size());

  // Compare with the basic approach: every block is shipped and re-hashed.
  std::vector<Transaction> basic;
  AuthQueryStats basic_stats;
  Check(client.BasicRangeQuery("donate", column_index, &lo, &hi, &basic,
                               &basic_stats),
        "basic range");
  printf("basic approach: same %zu results but %zu bytes transferred "
         "(%.1fx the ALI VO)\n",
         basic.size(), basic_stats.vo_bytes,
         static_cast<double>(basic_stats.vo_bytes) / stats.vo_bytes);

  // A forged response is caught: tamper with the VO before verification.
  AuthQueryResponse response;
  Check(nodes[1]->AuthProveRange("donate", "amount", &lo, &hi, &response),
        "prove");
  if (!response.proofs.empty()) {
    response.proofs.pop_back();  // malicious node drops a visited block
  }
  Hash256 digest;
  Check(nodes[2]->AuthDigestRange("donate", "amount", &lo, &hi,
                                  response.chain_height, &digest),
        "digest");
  std::vector<std::string> records;
  Status forged = AuthenticatedLayeredIndex::VerifyResponse(
      response, &lo, &hi,
      [column_index](const Slice& record, Value* key) -> Status {
        Transaction txn;
        Slice input = record;
        Status s = Transaction::DecodeFrom(&input, &txn);
        if (!s.ok()) return s;
        *key = txn.GetColumn(column_index);
        return Status::OK();
      },
      {digest}, 1, &records);
  printf("\nforged response (block withheld) -> %s\n",
         forged.ToString().c_str());

  for (auto& node : nodes) node->Stop();
  RemoveDirRecursive(dir);
  printf("\nthin_client_audit finished OK\n");
  return 0;
}
