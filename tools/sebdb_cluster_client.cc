// sebdb_cluster_client: BChainBench-style traffic generator for a running
// multi-process cluster (scripts/cluster.sh). Builds signed transactions
// locally (dev identity directory, see DevSecret), submits them over TCP via
// thin.submit with failover across nodes, and prints one "ACK <key>" line
// per acknowledged transaction — the ground truth the harness later audits
// against the chain (an acked key must survive any kill -9).
//
//   sebdb_cluster_client --id=client-0 --config=cluster.conf --txns=200
//
// Exit code 0 iff every transaction was acked by some node.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/cluster_config.h"
#include "core/thin_client_transport.h"
#include "network/tcp_network.h"
#include "types/transaction.h"

namespace {

struct Flags {
  std::string id = "client-0";
  std::string config;
  std::string table = "kv";
  int64_t txns = 100;
  int64_t attempt_timeout_ms = 2000;
  int64_t failover_rounds = 20;  // full passes over the node list per txn
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *out = arg + prefix.size();
  return true;
}

bool ParseFlag(const char* arg, const char* name, int64_t* out) {
  std::string value;
  if (!ParseFlag(arg, name, &value)) return false;
  *out = std::strtoll(value.c_str(), nullptr, 10);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sebdb;

  Flags flags;
  for (int i = 1; i < argc; i++) {
    if (ParseFlag(argv[i], "id", &flags.id) ||
        ParseFlag(argv[i], "config", &flags.config) ||
        ParseFlag(argv[i], "table", &flags.table) ||
        ParseFlag(argv[i], "txns", &flags.txns) ||
        ParseFlag(argv[i], "attempt-timeout-ms", &flags.attempt_timeout_ms) ||
        ParseFlag(argv[i], "failover-rounds", &flags.failover_rounds)) {
      continue;
    }
    std::fprintf(stderr,
                 "usage: %s --id=<client-id> --config=<cluster.conf>\n"
                 "          [--table=kv] [--txns=N] [--attempt-timeout-ms=N]\n"
                 "          [--failover-rounds=N]\n",
                 argv[0]);
    return 2;
  }
  if (flags.config.empty()) {
    std::fprintf(stderr, "--config is required\n");
    return 2;
  }

  ClusterConfig config;
  Status s = LoadClusterConfig(Env::Default(), flags.config, &config);
  if (!s.ok()) {
    std::fprintf(stderr, "config: %s\n", s.ToString().c_str());
    return 1;
  }

  KeyStore keystore;
  s = keystore.AddIdentity(flags.id, DevSecret(flags.id));
  if (!s.ok()) {
    std::fprintf(stderr, "keystore: %s\n", s.ToString().c_str());
    return 1;
  }

  TcpNetwork network(MakeClusterTcpOptions(config, flags.id));
  s = network.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "network: %s\n", s.ToString().c_str());
    return 1;
  }

  const std::vector<std::string> nodes = config.NodeIds();
  RpcThinTransport transport(flags.id, &network, nodes,
                             flags.attempt_timeout_ms);

  int64_t acked = 0;
  int64_t failed = 0;
  for (int64_t i = 0; i < flags.txns; i++) {
    const std::string key = flags.id + "-" + std::to_string(i);
    Transaction txn(flags.table,
                    {Value::Str(key), Value::Str("payload-" + key)});
    txn.set_ts(SystemClock::Default()->NowMicros());
    s = keystore.SignTransaction(flags.id, &txn);
    if (!s.ok()) {
      std::fprintf(stderr, "sign: %s\n", s.ToString().c_str());
      return 1;
    }
    // Failover submit: walk the node list (starting at a per-txn offset so
    // clients spread load) until some node acks. A timeout leaves the
    // outcome unknown — the txn may still commit — so the key is only
    // printed as ACK when a node confirmed the commit.
    bool ok = false;
    for (int64_t round = 0; round < flags.failover_rounds && !ok; round++) {
      for (size_t n = 0; n < nodes.size() && !ok; n++) {
        const std::string& node =
            nodes[(static_cast<size_t>(i) + n) % nodes.size()];
        Status submit = transport.Submit(node, txn);
        if (submit.ok()) ok = true;
      }
    }
    if (ok) {
      acked++;
      std::printf("ACK %s\n", key.c_str());
    } else {
      failed++;
      std::printf("FAIL %s\n", key.c_str());
    }
  }
  std::printf("DONE %s acked=%lld failed=%lld retries=%llu\n",
              flags.id.c_str(), static_cast<long long>(acked),
              static_cast<long long>(failed),
              static_cast<unsigned long long>(transport.retries()));
  std::fflush(stdout);
  network.Shutdown();
  return failed == 0 ? 0 : 1;
}
