// sebdb_server: one full node of a multi-process SEBDB cluster, speaking
// the TCP transport (network/tcp_network.h). Typical 3-node deployment:
//
//   cat > cluster.conf <<EOF
//   node node1 127.0.0.1 7101
//   node node2 127.0.0.1 7102
//   node node3 127.0.0.1 7103
//   EOF
//   sebdb_server --id=node1 --config=cluster.conf --data=/tmp/n1
//       --init-sql="CREATE donate (...)" &   # one line in a real shell
//   sebdb_server --id=node2 --config=cluster.conf --data=/tmp/n2 &
//   sebdb_server --id=node3 --config=cluster.conf --data=/tmp/n3 &
//
// scripts/cluster.sh automates this (plus client traffic and chaos).
// The process prints "READY <id> <host>:<port> height=<h>" on stdout once
// serving, and exits cleanly on SIGINT/SIGTERM (final checkpoint written).
// kill -9 is an explicitly supported way to go down: the next start replays
// the tail and gossip/repair refetch whatever the crash lost.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/cluster_config.h"
#include "core/node.h"
#include "network/tcp_network.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

struct Flags {
  std::string id;
  std::string config;
  std::string data;
  std::string consensus = "kafka";
  std::string init_sql;
  int64_t gossip_interval_ms = 50;
  int64_t heartbeat_ms = 100;
  int64_t peer_down_ms = 600;
  int64_t batch_timeout_ms = 20;
  int64_t max_batch_txns = 64;
  int64_t status_interval_ms = 0;  // 0 = no periodic status lines
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *out = arg + prefix.size();
  return true;
}

bool ParseFlag(const char* arg, const char* name, int64_t* out) {
  std::string value;
  if (!ParseFlag(arg, name, &value)) return false;
  *out = std::strtoll(value.c_str(), nullptr, 10);
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --id=<node-id> --config=<cluster.conf> --data=<dir>\n"
      "          [--consensus=kafka|pbft|tendermint] [--init-sql=<stmt>]\n"
      "          [--gossip-interval-ms=N] [--heartbeat-ms=N]\n"
      "          [--peer-down-ms=N] [--batch-timeout-ms=N]\n"
      "          [--max-batch-txns=N] [--status-interval-ms=N]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sebdb;

  Flags flags;
  for (int i = 1; i < argc; i++) {
    if (ParseFlag(argv[i], "id", &flags.id) ||
        ParseFlag(argv[i], "config", &flags.config) ||
        ParseFlag(argv[i], "data", &flags.data) ||
        ParseFlag(argv[i], "consensus", &flags.consensus) ||
        ParseFlag(argv[i], "init-sql", &flags.init_sql) ||
        ParseFlag(argv[i], "gossip-interval-ms", &flags.gossip_interval_ms) ||
        ParseFlag(argv[i], "heartbeat-ms", &flags.heartbeat_ms) ||
        ParseFlag(argv[i], "peer-down-ms", &flags.peer_down_ms) ||
        ParseFlag(argv[i], "batch-timeout-ms", &flags.batch_timeout_ms) ||
        ParseFlag(argv[i], "max-batch-txns", &flags.max_batch_txns) ||
        ParseFlag(argv[i], "status-interval-ms", &flags.status_interval_ms)) {
      continue;
    }
    std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
    return Usage(argv[0]);
  }
  if (flags.id.empty() || flags.config.empty() || flags.data.empty()) {
    return Usage(argv[0]);
  }

  ClusterConfig config;
  Status s = LoadClusterConfig(Env::Default(), flags.config, &config);
  if (!s.ok()) {
    std::fprintf(stderr, "config: %s\n", s.ToString().c_str());
    return 1;
  }
  const ClusterNodeSpec* self = config.Find(flags.id);
  if (self == nullptr) {
    std::fprintf(stderr, "node id '%s' not in %s\n", flags.id.c_str(),
                 flags.config.c_str());
    return 1;
  }

  // Shared dev identity directory: every node and a pool of client
  // identities derive the same secrets (see DevSecret).
  KeyStore keystore;
  std::vector<std::string> clients;
  for (int i = 0; i < 32; i++) clients.push_back("client-" + std::to_string(i));
  s = SeedDevKeyStore(config, clients, &keystore);
  if (!s.ok()) {
    std::fprintf(stderr, "keystore: %s\n", s.ToString().c_str());
    return 1;
  }

  TcpNetworkOptions net_options = MakeClusterTcpOptions(config, flags.id);
  net_options.heartbeat_interval_millis = flags.heartbeat_ms;
  net_options.peer_down_after_millis = flags.peer_down_ms;
  TcpNetwork network(std::move(net_options));
  s = network.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "network: %s\n", s.ToString().c_str());
    return 1;
  }

  NodeOptions options;
  options.node_id = flags.id;
  options.data_dir = flags.data;
  options.participants = config.NodeIds();
  if (flags.consensus == "kafka") {
    options.consensus = ConsensusKind::kKafka;
  } else if (flags.consensus == "pbft") {
    options.consensus = ConsensusKind::kPbft;
  } else if (flags.consensus == "tendermint") {
    options.consensus = ConsensusKind::kTendermint;
  } else {
    std::fprintf(stderr, "unknown consensus '%s'\n", flags.consensus.c_str());
    return Usage(argv[0]);
  }
  options.consensus_options.max_batch_txns =
      static_cast<uint32_t>(flags.max_batch_txns);
  options.consensus_options.batch_timeout_millis = flags.batch_timeout_ms;
  options.gossip.interval_millis = flags.gossip_interval_ms;
  // Remote thin clients are the normal load here: dispatch on a small
  // bounded worker pool so a flood sheds instead of wedging the transport's
  // delivery thread.
  options.rpc_server.workers = 4;
  options.rpc_server.max_queue = 256;

  SebdbNode node(options, &keystore, /*offchain=*/nullptr);
  s = node.Start(&network);
  if (!s.ok()) {
    std::fprintf(stderr, "start: %s\n", s.ToString().c_str());
    return 1;
  }

  if (!flags.init_sql.empty()) {
    ResultSet rs;
    s = node.ExecuteSql(flags.init_sql, {}, &rs);
    if (!s.ok() && !s.IsInvalidArgument()) {  // "table exists" is fine
      std::fprintf(stderr, "init-sql: %s\n", s.ToString().c_str());
      node.Stop();
      return 1;
    }
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  std::printf("READY %s %s:%u height=%llu\n", flags.id.c_str(),
              self->host.c_str(), static_cast<unsigned>(network.listen_port()),
              static_cast<unsigned long long>(node.chain().height()));
  std::fflush(stdout);

  int64_t since_status = 0;
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    since_status += 50;
    if (flags.status_interval_ms > 0 &&
        since_status >= flags.status_interval_ms) {
      since_status = 0;
      const NetworkStats net = network.stats();
      const TcpTransportStats tcp = network.tcp_stats();
      std::printf("STATUS %s height=%llu sent=%llu delivered=%llu "
                  "dropped=%llu rejected=%llu reconnects=%llu "
                  "peer_down=%llu\n",
                  flags.id.c_str(),
                  static_cast<unsigned long long>(node.chain().height()),
                  static_cast<unsigned long long>(net.messages_sent),
                  static_cast<unsigned long long>(net.messages_delivered),
                  static_cast<unsigned long long>(net.messages_dropped),
                  static_cast<unsigned long long>(net.frames_rejected),
                  static_cast<unsigned long long>(tcp.connects_ok),
                  static_cast<unsigned long long>(tcp.peer_down_events));
      std::fflush(stdout);
    }
  }

  std::printf("STOPPING %s height=%llu\n", flags.id.c_str(),
              static_cast<unsigned long long>(node.chain().height()));
  std::fflush(stdout);
  node.Stop();
  network.Shutdown();
  return 0;
}
