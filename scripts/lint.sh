#!/usr/bin/env bash
# Static-analysis gate over src/.
#
#   scripts/lint.sh [build-dir]     # default build dir: build/
#
# Two layers:
#   1. Grep lint (always runs, toolchain-independent) enforcing repo
#      invariants that compilers don't check:
#        - no raw std::mutex / lock_guard / naked .lock()/.unlock() outside
#          common/thread_annotations.h — all locking goes through the
#          annotated Mutex/MutexLock/CondVar wrappers so clang's
#          -Wthread-safety sees every acquisition;
#        - no discarded Status from storage mutations (Open/Close/Append/...)
#          — errors must be propagated or explicitly handled;
#        - no *_clock::now() outside common/clock.* — time flows through
#          NowMicros/SteadyNowMicros so tests and the lint can reason
#          about it in one place.
#   2. clang-tidy (bugprone-*, concurrency-*, performance-*; see .clang-tidy)
#      over every translation unit in src/, using the build dir's
#      compile_commands.json. Skipped with a notice when clang-tidy is not
#      installed — the grep layer still gates.
set -uo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build}"
failed=0

note() { printf '%s\n' "$*"; }
fail() {
  printf 'lint: %s\n' "$1"
  shift
  printf '%s\n' "$@"
  failed=1
}

# --- Layer 1: grep lint -----------------------------------------------------

# Raw locking primitives outside the annotated wrappers.
raw_locks=$(grep -rnE 'std::mutex|std::condition_variable|std::lock_guard|std::unique_lock|std::scoped_lock|\.lock\(\)|\.unlock\(\)' \
  src/ --include='*.h' --include='*.cc' \
  | grep -v '^src/common/thread_annotations\.h:' || true)
if [ -n "${raw_locks}" ]; then
  fail "raw locking primitive outside common/thread_annotations.h (use Mutex/MutexLock/CondVar):" "${raw_locks}"
fi

# Statement-level storage calls whose Status return is silently dropped.
# (Assignments, returns, conditions, and explicit (void) casts don't match.)
dropped_status=$(grep -rnE '^[[:space:]]*[A-Za-z_]+(\.|->)(Open|Close|Append|Sync|Flush|Truncate|Remove[A-Za-z]*|Write[A-Za-z]*)\(' \
  src/ --include='*.h' --include='*.cc' \
  | grep -vE '=|\breturn\b|\(void\)|\bif\b|RemovePeerWatcher' || true)
if [ -n "${dropped_status}" ]; then
  fail "storage call discards its Status (assign, return, or check it):" "${dropped_status}"
fi

# Unbounded growth of consensus ingress queues: every push into a mempool /
# pending-batch container must sit on a line marked "admitted:" asserting the
# txn was charged against an AdmissionController first (the admission module
# itself is exempt). Keeps the bounded-mempool invariant grep-checkable.
unbounded_mempool=$(grep -rnE '\b(mempool_|pending_|batch_pending_)\.(push_back|emplace_back|push_front|insert)\(' \
  src/ --include='*.h' --include='*.cc' \
  | grep -v 'admitted:' \
  | grep -v '^src/common/admission\.' || true)
if [ -n "${unbounded_mempool}" ]; then
  fail "mempool push without an \"admitted:\" marker (charge it against AdmissionController or annotate why it is already charged):" "${unbounded_mempool}"
fi

# Peer-fetched bytes must be hash-verified before they enter the chain:
# every call that splices a raw block record (AppendRaw) or installs a
# fetched checkpoint (InstallStateSync) must sit on or directly under a
# "verify:" marker asserting which check the bytes already passed (CRC +
# SHA-256 descriptor for checkpoint files, Merkle + hash-chain for block
# records). Declarations and the implementing modules are exempt.
unverified_splice=$(grep -rnE '(\.|->)?\b(AppendRaw|InstallStateSync)\(' \
  src/ --include='*.h' --include='*.cc' \
  | grep -vE 'verify:|^src/storage/block_store\.(h|cc):|^src/core/chain_manager\.h:|^src/core/chain_checkpoint\.cc:' || true)
if [ -n "${unverified_splice}" ]; then
  fail "peer-fetched bytes spliced/installed without a \"verify:\" marker (state the hash check the bytes passed):" "${unverified_splice}"
fi

# Raw file / directory I/O outside the Env implementation. Every byte the
# node persists or reads back must flow through the Env seam (and from there
# the page/buffer layer), or fault injection, crash tests, and the
# checkpoint-recovery guarantees silently stop covering it.
raw_io=$(grep -rnE '\bfopen\(|\bFILE[[:space:]]*\*|std::(i|o)?fstream|\bopendir\(|::open\(|\bpread\(|\bpwrite\(|\bmkdir\(|\bunlink\(|\brmdir\(|\brename\(|\btruncate\(' \
  src/ --include='*.h' --include='*.cc' \
  | grep -vE '^src/common/env\.(h|cc):' || true)
if [ -n "${raw_io}" ]; then
  fail "raw file I/O outside common/env.* (route it through Env so fault injection and crash tests see it):" "${raw_io}"
fi

# Raw socket syscalls and socket headers outside the TCP transport. The
# Network seam (DESIGN.md §15) is the only place bytes may touch a socket;
# anywhere else must hold a Network* so SimNetwork keeps every protocol
# deterministic under test. TcpNetwork writes its syscalls ::-prefixed,
# which is what this rule matches.
raw_sockets=$(grep -rnE '::(socket|connect|bind|listen|accept|recv|send|sendto|recvfrom|setsockopt|getsockname|shutdown|poll)\(|#include <(sys/socket|netinet/in|netinet/tcp|arpa/inet|netdb|poll)\.h>' \
  src/ --include='*.h' --include='*.cc' \
  | grep -v '^src/network/tcp_network\.cc:' || true)
if [ -n "${raw_sockets}" ]; then
  fail "raw socket call or socket header outside src/network/tcp_network.cc (talk through the Network seam):" "${raw_sockets}"
fi

# Clock access outside the sanctioned helpers.
clock_calls=$(grep -rnE '(system_clock|steady_clock|high_resolution_clock)::now\(\)' \
  src/ --include='*.h' --include='*.cc' \
  | grep -vE '^src/common/clock\.(h|cc):' || true)
if [ -n "${clock_calls}" ]; then
  fail "clock read outside common/clock.* (use NowMicros/SteadyNowMicros):" "${clock_calls}"
fi

# The wave scheduler owns index ingestion: every block reaches the indexes
# through TxnScheduler::Apply -> IndexSet::ApplyBlockScheduled, which
# commits each transaction's deltas in block order (DESIGN.md §13). A
# direct AddBlock / MergeTxnDeltas call anywhere else bypasses the
# deterministic merge and needs a "serial-apply:" marker stating why serial
# ingestion is correct there. The index/auth modules and the IndexSet merge
# path itself are exempt.
direct_ingest=$(grep -rnE '(\.|->)(AddBlock|MergeTxnDeltas)\(' \
  src/ --include='*.h' --include='*.cc' \
  | grep -v 'serial-apply:' \
  | grep -vE '^src/(index|auth)/|^src/sql/index_set\.(h|cc):' || true)
if [ -n "${direct_ingest}" ]; then
  fail "direct index ingestion outside the apply scheduler without a \"serial-apply:\" marker (route blocks through TxnScheduler::Apply):" "${direct_ingest}"
fi

if [ "${failed}" -eq 0 ]; then
  note "lint: grep rules clean"
fi

# --- Layer 2: clang-tidy ----------------------------------------------------

if ! command -v clang-tidy >/dev/null 2>&1; then
  note "lint: clang-tidy not installed; skipping (grep rules still gate)"
  exit "${failed}"
fi

if [ ! -f "${build_dir}/compile_commands.json" ]; then
  note "lint: ${build_dir}/compile_commands.json missing; run: cmake --preset default"
  exit 1
fi

mapfile -t sources < <(find src -name '*.cc' | sort)
note "lint: clang-tidy over ${#sources[@]} files (checks from .clang-tidy)"
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -quiet -p "${build_dir}" "${sources[@]}" || failed=1
else
  for source in "${sources[@]}"; do
    clang-tidy --quiet -p "${build_dir}" "${source}" || failed=1
  done
fi

exit "${failed}"
