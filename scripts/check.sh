#!/usr/bin/env bash
# Build and test the plain, ASan+UBSan, and TSan trees. The tsan preset's
# test filter runs only the concurrency-sensitive binaries (thread pool,
# executor, consensus, crash recovery).
#
#   scripts/check.sh            # all three presets
#   scripts/check.sh default    # plain build only
#   scripts/check.sh asan-ubsan # ASan+UBSan build only
#   scripts/check.sh tsan       # TSan build only
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default asan-ubsan tsan)
fi

for preset in "${presets[@]}"; do
  echo "=== preset: ${preset} ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "$(nproc)"
  ctest --preset "${preset}" -j "$(nproc)"
done
