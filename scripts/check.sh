#!/usr/bin/env bash
# Build and test across the hardening presets. The tsan preset's test filter
# runs only the concurrency-sensitive binaries (thread pool, executor,
# consensus, crash recovery, locking regressions); clang-thread-safety
# compiles with clang's -Wthread-safety as errors (the compile IS the test)
# and is skipped with a notice when clang++ is not installed.
#
#   scripts/check.sh                      # every preset below
#   scripts/check.sh default              # plain build only
#   scripts/check.sh asan-ubsan           # ASan+UBSan (includes fuzz smoke)
#   scripts/check.sh tsan                 # TSan build only
#   scripts/check.sh clang-thread-safety  # thread-safety analysis (clang)
#   scripts/check.sh soak                 # overload/partition soak harness,
#                                         # plain then TSan (ctest -L soak)
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default asan-ubsan tsan clang-thread-safety)
fi

for preset in "${presets[@]}"; do
  echo "=== preset: ${preset} ==="
  if [ "${preset}" = "soak" ]; then
    for soak_preset in default tsan; do
      echo "--- soak under ${soak_preset} ---"
      cmake --preset "${soak_preset}"
      cmake --build --preset "${soak_preset}" -j "$(nproc)"
      soak_dir=build
      [ "${soak_preset}" = "tsan" ] && soak_dir=build-tsan
      ctest --test-dir "${soak_dir}" -L soak --output-on-failure
    done
    continue
  fi
  if [ "${preset}" = "clang-thread-safety" ] && ! command -v clang++ >/dev/null 2>&1; then
    echo "clang++ not installed; skipping ${preset} (annotations compile to"
    echo "no-ops under gcc, so the other presets still cover the code)"
    continue
  fi
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "$(nproc)"
  ctest --preset "${preset}" -j "$(nproc)"
done
