#!/usr/bin/env bash
# Build and test both the plain and the ASan+UBSan trees.
#
#   scripts/check.sh            # both presets
#   scripts/check.sh default    # plain build only
#   scripts/check.sh asan-ubsan # sanitized build only
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default asan-ubsan)
fi

for preset in "${presets[@]}"; do
  echo "=== preset: ${preset} ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "$(nproc)"
  ctest --preset "${preset}" -j "$(nproc)"
done
