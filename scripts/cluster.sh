#!/usr/bin/env bash
# Local multi-process cluster harness: N sebdb_server processes over real
# TCP plus C traffic clients, with optional kill -9 chaos on a follower.
#
#   scripts/cluster.sh                 # 3 nodes, 2 clients, 100 txns each
#   scripts/cluster.sh -n 5 -c 4 -t 500
#   scripts/cluster.sh --chaos         # kill -9 + restart a follower mid-run
#
# Exits 0 iff every client transaction was acked and every node stopped at
# the same height (byte-identical tips are asserted by tests/cluster_test).
set -u

NODES=3
CLIENTS=2
TXNS=100
CHAOS=0
BUILD_DIR="$(dirname "$0")/../build"
PORT_BASE=$(( 7000 + RANDOM % 2000 ))

while [ $# -gt 0 ]; do
  case "$1" in
    -n) NODES="$2"; shift 2 ;;
    -c) CLIENTS="$2"; shift 2 ;;
    -t) TXNS="$2"; shift 2 ;;
    --chaos) CHAOS=1; shift ;;
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    *) echo "unknown arg: $1" >&2; exit 2 ;;
  esac
done

SERVER="$BUILD_DIR/tools/sebdb_server"
CLIENT="$BUILD_DIR/tools/sebdb_cluster_client"
for bin in "$SERVER" "$CLIENT"; do
  [ -x "$bin" ] || { echo "missing $bin (build first)" >&2; exit 2; }
done

WORK="$(mktemp -d /tmp/sebdb-cluster.XXXXXX)"
CONF="$WORK/cluster.conf"
trap 'pkill -9 -P $$ 2>/dev/null; rm -rf "$WORK"' EXIT

for i in $(seq 1 "$NODES"); do
  echo "node node$i 127.0.0.1 $(( PORT_BASE + i ))" >> "$CONF"
done
echo "== cluster config =="
cat "$CONF"

declare -a NODE_PID
start_node() { # $1 = index
  local id="node$1"
  local -a args=(--id="$id" --config="$CONF" --data="$WORK/$id"
                 --gossip-interval-ms=25 --heartbeat-ms=100 --peer-down-ms=500)
  [ "$1" = "1" ] && args+=("--init-sql=CREATE kv (k string, v string)")
  "$SERVER" "${args[@]}" >> "$WORK/$id.log" 2>&1 &
  NODE_PID[$1]=$!
}

for i in $(seq 1 "$NODES"); do start_node "$i"; done

# Wait for every node to report READY.
for i in $(seq 1 "$NODES"); do
  for _ in $(seq 1 100); do
    grep -q "^READY node$i " "$WORK/node$i.log" 2>/dev/null && break
    sleep 0.1
  done
  grep -q "^READY node$i " "$WORK/node$i.log" || {
    echo "node$i never became ready:" >&2; cat "$WORK/node$i.log" >&2; exit 1; }
done
echo "== $NODES nodes ready =="

declare -a CLIENT_PID
for c in $(seq 1 "$CLIENTS"); do
  "$CLIENT" --id="client-$c" --config="$CONF" --txns="$TXNS" \
    > "$WORK/client-$c.log" 2>&1 &
  CLIENT_PID[$c]=$!
done

if [ "$CHAOS" = "1" ] && [ "$NODES" -ge 3 ]; then
  # Never the broker (node1 orders for Kafka consensus): kill a follower
  # mid-traffic, leave it dead for a while, then restart it to catch up.
  VICTIM=$(( 2 + RANDOM % (NODES - 1) ))
  sleep 1
  echo "== chaos: kill -9 node$VICTIM =="
  kill -9 "${NODE_PID[$VICTIM]}" 2>/dev/null
  sleep 2
  echo "== chaos: restart node$VICTIM =="
  start_node "$VICTIM"
fi

FAILED=0
for c in $(seq 1 "$CLIENTS"); do
  wait "${CLIENT_PID[$c]}" || FAILED=1
  tail -1 "$WORK/client-$c.log"
done

# Let replication settle, then stop everything gracefully and compare the
# heights each node reported on the way out.
sleep 3
for i in $(seq 1 "$NODES"); do kill -TERM "${NODE_PID[$i]}" 2>/dev/null; done
for i in $(seq 1 "$NODES"); do wait "${NODE_PID[$i]}" 2>/dev/null; done

HEIGHTS=$(grep -h "^STOPPING" "$WORK"/node*.log | awk '{print $3}' | sort -u)
echo "== stop heights: $(echo $HEIGHTS | tr '\n' ' ') =="
ACKED=$(cat "$WORK"/client-*.log | grep -c "^ACK ")
echo "== acked: $ACKED =="

if [ "$FAILED" != "0" ]; then
  echo "FAIL: a client had unacked transactions" >&2; exit 1
fi
if [ "$(echo "$HEIGHTS" | wc -l)" != "1" ]; then
  echo "FAIL: nodes stopped at different heights" >&2
  grep -h "^STOPPING" "$WORK"/node*.log >&2
  exit 1
fi
echo "OK"
